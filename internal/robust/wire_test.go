package robust

import (
	"reflect"
	"testing"

	"overlaymatch/internal/lid"
	"overlaymatch/internal/transport"
)

// TolerantNode deliberately has no wire messages of its own: it speaks
// lid.Msg verbatim (same PROP/REJ alphabet, hardened semantics), so
// robust and plain nodes interoperate frame-for-frame. This test pins
// that contract to the codec registry — if robust ever grows an own
// message type, its registration must land with it.
func TestRobustTrafficHasCodec(t *testing.T) {
	id, c, ok := transport.CodecFor(lid.Msg{IsProp: true})
	if !ok {
		t.Fatal("lid.Msg (robust's entire wire alphabet) has no registered codec")
	}
	if id != transport.IDLIDMsg {
		t.Fatalf("lid.Msg registered at %#04x, want %#04x", id, transport.IDLIDMsg)
	}
	if c.Type != reflect.TypeOf(lid.Msg{}) {
		t.Fatalf("codec type %v, want lid.Msg", c.Type)
	}
	// The timeout token stays local on purpose: finding it in the
	// registry would mean a protocol-internal timer leaked to the wire.
	if _, _, ok := transport.CodecFor(timeoutToken{}); ok {
		t.Fatal("timeoutToken must not have a wire codec — it is a local timer self-delivery")
	}
}
