package robust

import (
	"testing"

	"overlaymatch/internal/metrics"
	"overlaymatch/internal/simnet"
)

// TestScenarioPublishesMetrics: a scenario run with a sink registry
// attached must publish its tolerance counters (and the underlying
// simnet instruments) without changing the outcome.
func TestScenarioPublishesMetrics(t *testing.T) {
	s := randomSystem(t, 4, 30, 0.3, 2)
	base := Scenario{
		System:      s,
		Adversaries: FractionAdversaries(30, 0.2, AdvCrash),
		Timeout:     50,
		Options:     simnet.Options{Seed: 4, Latency: simnet.UniformLatency(1, 3)},
	}
	plain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	sink := metrics.New()
	instrumented := base
	instrumented.Options.Metrics = sink
	out, err := instrumented.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !out.HonestMatching.Equal(plain.HonestMatching) {
		t.Fatal("metrics sink changed the honest matching")
	}

	counter := func(name string) int { return int(sink.Counter(name, "").Value()) }
	if counter("robust_runs_total") != 1 {
		t.Fatalf("robust_runs_total = %d", counter("robust_runs_total"))
	}
	if counter("robust_revocations_total") != out.Revocations {
		t.Fatalf("revocations: registry %d, outcome %d",
			counter("robust_revocations_total"), out.Revocations)
	}
	if counter("robust_dead_locks_total") != out.DeadLocks {
		t.Fatalf("dead locks: registry %d, outcome %d",
			counter("robust_dead_locks_total"), out.DeadLocks)
	}
	if counter("robust_honest_locked_edges_total") != out.HonestMatching.Size() {
		t.Fatal("locked-edge counter disagrees with the matching")
	}
	if counter("simnet_deliveries_total") != out.Stats.Deliveries {
		t.Fatal("simnet instruments missing from the sink")
	}
}
