// Package robust addresses the paper's future-work question (§7):
// "scenarios where some malicious nodes actively try to disrupt the
// algorithm's execution". Plain LID trusts its neighbors: a peer that
// silently swallows a PROP leaves the proposer waiting forever, and a
// peer that sends protocol-violating sequences trips the strict state
// machine. This package provides
//
//   - TolerantNode: a hardened LID variant. Every proposal carries a
//     local timeout; an unanswered proposal is *revoked* — the
//     proposer sends an explicit REJ, writes the pair off, and moves
//     on. Because the base protocol locks silently on mutual PROPs, a
//     revocation can race a lock; TolerantNode therefore treats locks
//     as revocable: a REJ arriving from a locked neighbor dissolves
//     the lock and frees the quota slot. Unexpected messages are
//     counted, never panicked on.
//   - Adversaries: Crash (silent from the start), CrashAfter (fails
//     mid-protocol), and Spammer (floods PROP followed by REJ to every
//     neighbor).
//
// The proposal timeout is static by default; SetAdaptiveTimeout
// optionally drives it from a phi-accrual estimator over observed
// response times (package detector), with the static value as a hard
// ceiling so adaptation only tightens.
//
// Guarantees and their limits: with honest-but-slow peers, a timeout
// chosen above the latency tail keeps the outcome identical to LIC
// (tested); under adversaries the hardened protocol still terminates,
// ends with symmetric locks and feasible quotas, and honest peers keep
// a measured fraction of the satisfaction they would get in an
// adversary-free overlay (experiment E12). Distinguishing a slow peer
// from a dead one is impossible in a fully asynchronous system, so
// spurious timeouts can cost connections — never consistency.
package robust

import (
	"fmt"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// timeoutToken is the private timer token for proposal timeouts.
type timeoutToken struct {
	To graph.NodeID
}

// adaptiveMinSamples is how many response-time observations the
// estimator needs before the adaptive timeout replaces the static one.
// Below it the variance estimate is dominated by the floor and a single
// latency-tail draw could revoke half the overlay.
const adaptiveMinSamples = 4

// neighbor states. Unlike package lid these admit one extra
// transition: locked -> resolved (revoked lock).
type nstate uint8

const (
	stUntouched nstate = iota
	stProposed
	stApproached
	stLocked
	stResolved // any dead pair: rejected, revoked, or dissolved
)

// TolerantNode is the hardened LID state machine. It implements
// simnet.Handler and requires a timer-capable runtime (both simnet
// runtimes qualify).
type TolerantNode struct {
	id      graph.NodeID
	quota   int
	timeout float64
	order   []graph.NodeID
	state   map[graph.NodeID]nstate

	cursor     int
	unresolved int
	pending    int
	locked     []graph.NodeID
	halted     bool
	quotaFullB bool // REJ broadcast already sent

	// est, when non-nil, adapts the proposal timeout to observed
	// response times (phi-accrual, see SetAdaptiveTimeout). sentAt
	// remembers when each outstanding proposal left.
	est    *detector.Estimator
	phi    float64
	sentAt map[graph.NodeID]float64

	// Violations counts messages that the strict protocol forbids;
	// adversaries produce them, honest peers never should.
	Violations int
	// Revocations counts proposals this node revoked after timeout.
	Revocations int
	// DissolvedLocks counts locks dissolved by an incoming revocation.
	DissolvedLocks int
	// AdaptiveArms counts proposals whose timer was armed from the
	// estimator rather than the static timeout.
	AdaptiveArms int
}

// NewTolerantNode builds the hardened node for id with the given
// proposal timeout (virtual time units).
func NewTolerantNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, timeout float64) *TolerantNode {
	if timeout <= 0 {
		panic("robust: timeout must be positive")
	}
	order := tbl.SortedNeighbors(s, id)
	st := make(map[graph.NodeID]nstate, len(order))
	for _, nb := range order {
		st[nb] = stUntouched
	}
	return &TolerantNode{
		id:         id,
		quota:      s.Quota(id),
		timeout:    timeout,
		order:      order,
		state:      st,
		unresolved: len(order),
	}
}

// SetAdaptiveTimeout attaches a phi-accrual estimator that tightens
// the proposal timeout as response times are observed: once the
// estimator holds enough samples, each new proposal's timer is armed at
// Threshold(phi) instead of the static timeout. The static timeout
// stays a hard ceiling — adaptation only ever tightens, so the
// termination argument of the fixed-timeout protocol carries over
// unchanged, and a nil estimator (the default) leaves the node
// byte-identical to the fixed-timeout one. Response times are only
// meaningful on the event runtime (the goroutine runtime reports
// virtual time 0 everywhere), so under the GoRunner the node silently
// stays on the static timeout. Call before Init.
func (n *TolerantNode) SetAdaptiveTimeout(est *detector.Estimator, phi float64) {
	if phi <= 0 {
		panic("robust: phi threshold must be positive")
	}
	n.est = est
	n.phi = phi
	n.sentAt = make(map[graph.NodeID]float64, len(n.order))
}

// proposalTimeout picks the timer value for the next proposal: the
// estimator's threshold when it is armed and tighter than the static
// bound, the static bound otherwise.
func (n *TolerantNode) proposalTimeout() float64 {
	if n.est == nil || n.est.Count() < adaptiveMinSamples {
		return n.timeout
	}
	if to := n.est.Threshold(n.phi); to < n.timeout {
		n.AdaptiveArms++
		return to
	}
	return n.timeout
}

// observeResponse feeds the estimator with the response time of an
// answered proposal. Timed-out proposals are never observed (the
// revocation is not an answer), mirroring Karn's rule in the
// retransmission layer.
func (n *TolerantNode) observeResponse(ctx simnet.Context, from graph.NodeID) {
	if n.est == nil {
		return
	}
	if now := ctx.Time(); now > 0 {
		if rt := now - n.sentAt[from]; rt > 0 {
			n.est.Observe(rt)
		}
	}
}

// Init implements simnet.Handler.
func (n *TolerantNode) Init(ctx simnet.Context) {
	for n.pending+len(n.locked) < n.quota && n.cursor < len(n.order) {
		v := n.order[n.cursor]
		n.cursor++
		n.propose(ctx, v)
	}
	n.checkDone(ctx)
}

func (n *TolerantNode) propose(ctx simnet.Context, v graph.NodeID) {
	n.state[v] = stProposed
	n.pending++
	if n.est != nil {
		n.sentAt[v] = ctx.Time()
	}
	ctx.Send(v, lid.Msg{IsProp: true})
	simnet.SetTimerOn(ctx, n.proposalTimeout(), timeoutToken{To: v})
}

// HandleMessage implements simnet.Handler.
func (n *TolerantNode) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	if tok, ok := msg.(timeoutToken); ok {
		n.handleTimeout(ctx, tok.To)
		n.checkDone(ctx)
		return
	}
	m, ok := msg.(lid.Msg)
	if !ok {
		n.Violations++
		return
	}
	st, known := n.state[from]
	if !known {
		n.Violations++
		return
	}
	if m.IsProp {
		n.handleProp(ctx, from, st)
	} else {
		n.handleRej(ctx, from, st)
	}
	n.checkDone(ctx)
}

func (n *TolerantNode) handleTimeout(ctx simnet.Context, to graph.NodeID) {
	if n.state[to] != stProposed {
		return // answered in time; stale timer
	}
	// Revoke: explicit REJ so an honest slow peer learns the proposal
	// is withdrawn (and dissolves a racing lock).
	n.state[to] = stResolved
	n.unresolved--
	n.pending--
	n.Revocations++
	// Telemetry: a timeout-driven revocation is the protocol's key
	// robustness decision — worth a point event in the causal log.
	if rec := simnet.ObserverOf(ctx); rec != nil {
		rec.Point(n.id, "robust.revoke", fmt.Sprintf("peer=%d", to), ctx.Time())
	}
	ctx.Send(to, lid.Msg{IsProp: false})
	n.proposeNext(ctx)
}

func (n *TolerantNode) handleProp(ctx simnet.Context, from graph.NodeID, st nstate) {
	switch st {
	case stUntouched:
		n.state[from] = stApproached
	case stProposed:
		// The mutual PROP answers ours; it doubles as a response-time
		// sample for the adaptive timeout.
		n.observeResponse(ctx, from)
		n.lock(ctx, from, true)
	case stResolved:
		// Late PROP crossing our revoke or quota-full REJ: if we never
		// answered this pair with a REJ we would leave an honest peer
		// relying on its own timeout; both revoke and broadcast paths
		// already sent one, so nothing to do.
	case stApproached, stLocked:
		n.Violations++ // duplicate PROP
	}
}

func (n *TolerantNode) handleRej(ctx simnet.Context, from graph.NodeID, st nstate) {
	switch st {
	case stProposed:
		// A rejection is still an answer: it carries the same
		// response-time information as an accepting PROP.
		n.observeResponse(ctx, from)
		n.state[from] = stResolved
		n.unresolved--
		n.pending--
		n.proposeNext(ctx)
	case stUntouched:
		n.state[from] = stResolved
		n.unresolved--
	case stApproached:
		// A revocation of a proposal we had not answered yet.
		n.state[from] = stResolved
		n.unresolved--
	case stLocked:
		// Revocation racing our silent lock: dissolve it.
		n.dissolve(ctx, from)
	case stResolved:
		// Crossing REJs; fine.
	}
}

// dissolve removes a revoked lock and tries to reuse the freed slot.
func (n *TolerantNode) dissolve(ctx simnet.Context, from graph.NodeID) {
	n.state[from] = stResolved
	for i, v := range n.locked {
		if v == from {
			n.locked = append(n.locked[:i], n.locked[i+1:]...)
			break
		}
	}
	n.DissolvedLocks++
	if rec := simnet.ObserverOf(ctx); rec != nil {
		rec.Point(n.id, "robust.dissolve", fmt.Sprintf("peer=%d", from), ctx.Time())
	}
	// The freed slot can only be refilled if unproposed candidates
	// remain (after a quota-full broadcast there are none).
	if !n.quotaFullB {
		n.proposeNext(ctx)
	}
}

func (n *TolerantNode) proposeNext(ctx simnet.Context) {
	for n.pending+len(n.locked) < n.quota && n.cursor < len(n.order) {
		v := n.order[n.cursor]
		n.cursor++
		switch n.state[v] {
		case stUntouched:
			n.propose(ctx, v)
			return
		case stApproached:
			ctx.Send(v, lid.Msg{IsProp: true})
			n.lock(ctx, v, false)
			return
		}
	}
}

func (n *TolerantNode) lock(ctx simnet.Context, from graph.NodeID, fromProposed bool) {
	n.state[from] = stLocked
	n.unresolved--
	if fromProposed {
		n.pending--
	}
	n.locked = append(n.locked, from)
	if len(n.locked) > n.quota {
		panic(fmt.Sprintf("robust: node %d exceeded quota", n.id))
	}
	if len(n.locked) == n.quota && !n.quotaFullB {
		n.quotaFullB = true
		for _, v := range n.order {
			switch n.state[v] {
			case stUntouched, stApproached:
				n.state[v] = stResolved
				n.unresolved--
				ctx.Send(v, lid.Msg{IsProp: false})
			case stProposed:
				// Unlike strict LID, pending proposals can coexist
				// with a full quota here (a dissolved lock may have
				// been refilled by an approach while a proposal was in
				// flight is impossible — but a timeout-revoked slot
				// refilled by a mutual lock can leave a pending
				// proposal). Revoke them.
				n.state[v] = stResolved
				n.unresolved--
				n.pending--
				n.Revocations++
				ctx.Send(v, lid.Msg{IsProp: false})
			}
		}
	}
}

func (n *TolerantNode) checkDone(ctx simnet.Context) {
	if n.unresolved == 0 && !n.halted {
		n.halted = true
		ctx.Halt()
	}
}

// Halted reports local termination.
func (n *TolerantNode) Halted() bool { return n.halted }

// Locked returns the node's current connections.
func (n *TolerantNode) Locked() []graph.NodeID {
	return append([]graph.NodeID(nil), n.locked...)
}

// ID returns the node's identifier.
func (n *TolerantNode) ID() graph.NodeID { return n.id }
