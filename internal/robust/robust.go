// Package robust addresses the paper's future-work question (§7):
// "scenarios where some malicious nodes actively try to disrupt the
// algorithm's execution". Plain LID trusts its neighbors: a peer that
// silently swallows a PROP leaves the proposer waiting forever, and a
// peer that sends protocol-violating sequences trips the strict state
// machine. This package provides
//
//   - TolerantNode: a hardened LID variant. Every proposal carries a
//     local timeout; an unanswered proposal is *revoked* — the
//     proposer sends an explicit REJ, writes the pair off, and moves
//     on. Because the base protocol locks silently on mutual PROPs, a
//     revocation can race a lock; TolerantNode therefore treats locks
//     as revocable: a REJ arriving from a locked neighbor dissolves
//     the lock and frees the quota slot. Unexpected messages are
//     counted, never panicked on.
//   - Adversaries: Crash (silent from the start), CrashAfter (fails
//     mid-protocol), and Spammer (floods PROP followed by REJ to every
//     neighbor).
//
// Guarantees and their limits: with honest-but-slow peers, a timeout
// chosen above the latency tail keeps the outcome identical to LIC
// (tested); under adversaries the hardened protocol still terminates,
// ends with symmetric locks and feasible quotas, and honest peers keep
// a measured fraction of the satisfaction they would get in an
// adversary-free overlay (experiment E12). Distinguishing a slow peer
// from a dead one is impossible in a fully asynchronous system, so
// spurious timeouts can cost connections — never consistency.
package robust

import (
	"fmt"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// timeoutToken is the private timer token for proposal timeouts.
type timeoutToken struct {
	To graph.NodeID
}

// neighbor states. Unlike package lid these admit one extra
// transition: locked -> resolved (revoked lock).
type nstate uint8

const (
	stUntouched nstate = iota
	stProposed
	stApproached
	stLocked
	stResolved // any dead pair: rejected, revoked, or dissolved
)

// TolerantNode is the hardened LID state machine. It implements
// simnet.Handler and requires a timer-capable runtime (both simnet
// runtimes qualify).
type TolerantNode struct {
	id      graph.NodeID
	quota   int
	timeout float64
	order   []graph.NodeID
	state   map[graph.NodeID]nstate

	cursor     int
	unresolved int
	pending    int
	locked     []graph.NodeID
	halted     bool
	quotaFullB bool // REJ broadcast already sent

	// Violations counts messages that the strict protocol forbids;
	// adversaries produce them, honest peers never should.
	Violations int
	// Revocations counts proposals this node revoked after timeout.
	Revocations int
	// DissolvedLocks counts locks dissolved by an incoming revocation.
	DissolvedLocks int
}

// NewTolerantNode builds the hardened node for id with the given
// proposal timeout (virtual time units).
func NewTolerantNode(s *pref.System, tbl *satisfaction.Table, id graph.NodeID, timeout float64) *TolerantNode {
	if timeout <= 0 {
		panic("robust: timeout must be positive")
	}
	order := tbl.SortedNeighbors(s, id)
	st := make(map[graph.NodeID]nstate, len(order))
	for _, nb := range order {
		st[nb] = stUntouched
	}
	return &TolerantNode{
		id:         id,
		quota:      s.Quota(id),
		timeout:    timeout,
		order:      order,
		state:      st,
		unresolved: len(order),
	}
}

// Init implements simnet.Handler.
func (n *TolerantNode) Init(ctx simnet.Context) {
	for n.pending+len(n.locked) < n.quota && n.cursor < len(n.order) {
		v := n.order[n.cursor]
		n.cursor++
		n.propose(ctx, v)
	}
	n.checkDone(ctx)
}

func (n *TolerantNode) propose(ctx simnet.Context, v graph.NodeID) {
	n.state[v] = stProposed
	n.pending++
	ctx.Send(v, lid.Msg{IsProp: true})
	simnet.SetTimerOn(ctx, n.timeout, timeoutToken{To: v})
}

// HandleMessage implements simnet.Handler.
func (n *TolerantNode) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	if tok, ok := msg.(timeoutToken); ok {
		n.handleTimeout(ctx, tok.To)
		n.checkDone(ctx)
		return
	}
	m, ok := msg.(lid.Msg)
	if !ok {
		n.Violations++
		return
	}
	st, known := n.state[from]
	if !known {
		n.Violations++
		return
	}
	if m.IsProp {
		n.handleProp(ctx, from, st)
	} else {
		n.handleRej(ctx, from, st)
	}
	n.checkDone(ctx)
}

func (n *TolerantNode) handleTimeout(ctx simnet.Context, to graph.NodeID) {
	if n.state[to] != stProposed {
		return // answered in time; stale timer
	}
	// Revoke: explicit REJ so an honest slow peer learns the proposal
	// is withdrawn (and dissolves a racing lock).
	n.state[to] = stResolved
	n.unresolved--
	n.pending--
	n.Revocations++
	ctx.Send(to, lid.Msg{IsProp: false})
	n.proposeNext(ctx)
}

func (n *TolerantNode) handleProp(ctx simnet.Context, from graph.NodeID, st nstate) {
	switch st {
	case stUntouched:
		n.state[from] = stApproached
	case stProposed:
		n.lock(ctx, from, true)
	case stResolved:
		// Late PROP crossing our revoke or quota-full REJ: if we never
		// answered this pair with a REJ we would leave an honest peer
		// relying on its own timeout; both revoke and broadcast paths
		// already sent one, so nothing to do.
	case stApproached, stLocked:
		n.Violations++ // duplicate PROP
	}
}

func (n *TolerantNode) handleRej(ctx simnet.Context, from graph.NodeID, st nstate) {
	switch st {
	case stProposed:
		n.state[from] = stResolved
		n.unresolved--
		n.pending--
		n.proposeNext(ctx)
	case stUntouched:
		n.state[from] = stResolved
		n.unresolved--
	case stApproached:
		// A revocation of a proposal we had not answered yet.
		n.state[from] = stResolved
		n.unresolved--
	case stLocked:
		// Revocation racing our silent lock: dissolve it.
		n.dissolve(ctx, from)
	case stResolved:
		// Crossing REJs; fine.
	}
}

// dissolve removes a revoked lock and tries to reuse the freed slot.
func (n *TolerantNode) dissolve(ctx simnet.Context, from graph.NodeID) {
	n.state[from] = stResolved
	for i, v := range n.locked {
		if v == from {
			n.locked = append(n.locked[:i], n.locked[i+1:]...)
			break
		}
	}
	n.DissolvedLocks++
	// The freed slot can only be refilled if unproposed candidates
	// remain (after a quota-full broadcast there are none).
	if !n.quotaFullB {
		n.proposeNext(ctx)
	}
}

func (n *TolerantNode) proposeNext(ctx simnet.Context) {
	for n.pending+len(n.locked) < n.quota && n.cursor < len(n.order) {
		v := n.order[n.cursor]
		n.cursor++
		switch n.state[v] {
		case stUntouched:
			n.propose(ctx, v)
			return
		case stApproached:
			ctx.Send(v, lid.Msg{IsProp: true})
			n.lock(ctx, v, false)
			return
		}
	}
}

func (n *TolerantNode) lock(ctx simnet.Context, from graph.NodeID, fromProposed bool) {
	n.state[from] = stLocked
	n.unresolved--
	if fromProposed {
		n.pending--
	}
	n.locked = append(n.locked, from)
	if len(n.locked) > n.quota {
		panic(fmt.Sprintf("robust: node %d exceeded quota", n.id))
	}
	if len(n.locked) == n.quota && !n.quotaFullB {
		n.quotaFullB = true
		for _, v := range n.order {
			switch n.state[v] {
			case stUntouched, stApproached:
				n.state[v] = stResolved
				n.unresolved--
				ctx.Send(v, lid.Msg{IsProp: false})
			case stProposed:
				// Unlike strict LID, pending proposals can coexist
				// with a full quota here (a dissolved lock may have
				// been refilled by an approach while a proposal was in
				// flight is impossible — but a timeout-revoked slot
				// refilled by a mutual lock can leave a pending
				// proposal). Revoke them.
				n.state[v] = stResolved
				n.unresolved--
				n.pending--
				n.Revocations++
				ctx.Send(v, lid.Msg{IsProp: false})
			}
		}
	}
}

func (n *TolerantNode) checkDone(ctx simnet.Context) {
	if n.unresolved == 0 && !n.halted {
		n.halted = true
		ctx.Halt()
	}
}

// Halted reports local termination.
func (n *TolerantNode) Halted() bool { return n.halted }

// Locked returns the node's current connections.
func (n *TolerantNode) Locked() []graph.NodeID {
	return append([]graph.NodeID(nil), n.locked...)
}

// ID returns the node's identifier.
func (n *TolerantNode) ID() graph.NodeID { return n.id }
