package robust

import (
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/simnet"
)

// Adversary behaviors. Each implements simnet.Handler and calls Halt
// immediately (an adversary is never "waiting" — it is dead or done),
// so runs still quiesce structurally.

// Crash is the fail-stop-at-start adversary: it never sends anything
// and ignores everything. Against plain LID this deadlocks proposers;
// TolerantNode's timeouts absorb it.
type Crash struct{}

// Init implements simnet.Handler.
func (Crash) Init(ctx simnet.Context) { ctx.Halt() }

// HandleMessage implements simnet.Handler.
func (Crash) HandleMessage(simnet.Context, int, simnet.Message) {}

// CrashAfter behaves as a correct (tolerant) peer for the first K
// deliveries, then fails silently — the nastiest fail-stop pattern,
// since it may crash between receiving a PROP and answering it, or
// right after locking.
type CrashAfter struct {
	Inner *TolerantNode
	K     int

	seen    int
	crashed bool
}

// Init implements simnet.Handler.
func (c *CrashAfter) Init(ctx simnet.Context) {
	if c.K <= 0 {
		c.crashed = true
		ctx.Halt()
		return
	}
	c.Inner.Init(&haltLessCtx{ctx})
	ctx.Halt() // terminated from the runtime's viewpoint either way
}

// HandleMessage implements simnet.Handler.
func (c *CrashAfter) HandleMessage(ctx simnet.Context, from int, msg simnet.Message) {
	if c.crashed {
		return
	}
	c.seen++
	if c.seen > c.K {
		c.crashed = true
		return
	}
	c.Inner.HandleMessage(&haltLessCtx{ctx}, from, msg)
}

// haltLessCtx suppresses the inner node's Halt (the wrapper manages
// termination) while passing everything else through.
type haltLessCtx struct {
	simnet.Context
}

func (h *haltLessCtx) Halt() {}

// SetTimer forwards to the underlying timer-capable context.
func (h *haltLessCtx) SetTimer(delay float64, msg simnet.Message) {
	simnet.SetTimerOn(h.Context, delay, msg)
}

// Spammer floods every neighbor with a PROP immediately followed by a
// REJ — a protocol-violating sequence designed to trigger transient
// locks and dissolutions at honest peers.
type Spammer struct {
	Neighbors []graph.NodeID
}

// Init implements simnet.Handler.
func (s Spammer) Init(ctx simnet.Context) {
	for _, nb := range s.Neighbors {
		ctx.Send(nb, lid.Msg{IsProp: true})
	}
	for _, nb := range s.Neighbors {
		ctx.Send(nb, lid.Msg{IsProp: false})
	}
	ctx.Halt()
}

// HandleMessage implements simnet.Handler.
func (Spammer) HandleMessage(simnet.Context, int, simnet.Message) {}
