package robust

import (
	"testing"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

// The full hardened stack: tolerant LID (proposal timeouts) running
// through the ack/retransmit reliability layer over a lossy network,
// with crash-silent adversaries mixed in. This is the closest the
// repository gets to a deployment scenario: unreliable links AND
// unreliable peers at once. The reliability layer must pass the
// tolerant protocol's timer tokens through (Endpoint.SetTimer), keep
// delivery exactly-once, and the composition must terminate with a
// consistent honest matching.

// runStack wires tolerant nodes through reliable endpoints.
func runStack(t *testing.T, seed uint64, dropP float64, adversaries map[graph.NodeID]AdversaryKind) (
	[]*TolerantNode, []*reliable.Endpoint, simnet.Stats) {
	t.Helper()
	s := randomSystem(t, seed, 20, 0.4, 2)
	tbl := satisfaction.NewTable(s)

	handlers := make([]simnet.Handler, 20)
	var honest []*TolerantNode
	for id := 0; id < 20; id++ {
		if kind, isAdv := adversaries[id]; isAdv {
			switch kind {
			case AdvCrash:
				handlers[id] = Crash{}
			case AdvSpammer:
				handlers[id] = Spammer{Neighbors: s.Graph().Neighbors(id)}
			}
			continue
		}
		// Timeout must exceed the worst-case retransmission-extended
		// round trip; with rto=8 and ~40% worst loss, 400 is ample.
		n := NewTolerantNode(s, tbl, id, 400)
		honest = append(honest, n)
		handlers[id] = n
	}
	eps := reliable.Wrap(handlers, 8, 0)
	var drop simnet.DropFunc
	if dropP > 0 {
		drop = simnet.UniformDrop(dropP)
	}
	runner := simnet.NewRunner(20, simnet.Options{
		Seed:    seed + 1,
		Drop:    drop,
		Latency: simnet.ExponentialLatency(1),
	})
	stats, err := runner.Run(reliable.Handlers(eps))
	if err != nil {
		t.Fatalf("hardened stack failed: %v", err)
	}
	return honest, eps, stats
}

func honestMatchingOf(t *testing.T, honest []*TolerantNode, adversaries map[graph.NodeID]AdversaryKind) *matching.Matching {
	t.Helper()
	m := matching.New(20)
	locked := map[graph.NodeID]map[graph.NodeID]bool{}
	for _, n := range honest {
		locked[n.ID()] = map[graph.NodeID]bool{}
		for _, v := range n.Locked() {
			locked[n.ID()][v] = true
		}
	}
	for _, n := range honest {
		for _, v := range n.Locked() {
			if _, adv := adversaries[v]; adv {
				continue
			}
			if !locked[v][n.ID()] {
				t.Fatalf("asymmetric honest lock %d-%d", n.ID(), v)
			}
			if n.ID() < v {
				m.Add(n.ID(), v)
			}
		}
	}
	return m
}

func TestHardenedStackLossOnly(t *testing.T) {
	// No adversaries, 30% loss, honest timeouts above the inflated
	// round trips: the outcome must equal LIC exactly — loss alone
	// costs nothing but retransmissions.
	for seed := uint64(0); seed < 10; seed++ {
		s := randomSystem(t, seed, 20, 0.4, 2)
		tbl := satisfaction.NewTable(s)
		honest, eps, stats := runStack(t, seed, 0.3, nil)
		m := honestMatchingOf(t, honest, nil)
		if !m.Equal(matching.LIC(s, tbl)) {
			t.Fatalf("seed %d: hardened stack over loss != LIC", seed)
		}
		if reliable.TotalRetransmits(eps) == 0 {
			t.Fatalf("seed %d: no retransmissions at 30%% loss", seed)
		}
		if stats.Dropped == 0 {
			t.Fatalf("seed %d: loss model inert", seed)
		}
		// No honest timeout should have fired: reliability made every
		// answer arrive eventually, well within the generous timeout.
		for _, n := range honest {
			if n.Revocations != 0 {
				t.Fatalf("seed %d: spurious revocations under pure loss", seed)
			}
		}
	}
}

func TestHardenedStackLossAndCrashes(t *testing.T) {
	// 20% loss and 3 crashed peers: must terminate, stay symmetric,
	// and keep a consistent honest matching.
	adversaries := map[graph.NodeID]AdversaryKind{3: AdvCrash, 9: AdvCrash, 15: AdvCrash}
	for seed := uint64(0); seed < 10; seed++ {
		s := randomSystem(t, seed, 20, 0.4, 2)
		honest, _, _ := runStack(t, seed, 0.2, adversaries)
		m := honestMatchingOf(t, honest, adversaries)
		if err := m.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Crashed peers draw proposals that must be revoked by timeout.
		totalRev := 0
		for _, n := range honest {
			totalRev += n.Revocations
		}
		if totalRev == 0 {
			t.Fatalf("seed %d: crashes present but nothing revoked", seed)
		}
	}
}

func TestHardenedStackLossAndSpam(t *testing.T) {
	adversaries := map[graph.NodeID]AdversaryKind{5: AdvSpammer, 12: AdvSpammer}
	for seed := uint64(0); seed < 10; seed++ {
		s := randomSystem(t, seed, 20, 0.4, 2)
		honest, _, _ := runStack(t, seed, 0.25, adversaries)
		m := honestMatchingOf(t, honest, adversaries)
		if err := m.Validate(s); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
