package matching

import (
	"slices"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// LIC runs Algorithm 2 (Local Information-based Centralized) in its
// efficient sorted-scan form: edges are visited in decreasing weight
// order (the shared strict total order of satisfaction.WeightKey) and
// selected whenever both endpoints still have quota. By Lemma 6 the
// outcome of the literal "take any locally heaviest edge" loop is
// order-independent, and the descending scan is one valid such order,
// so this computes exactly the LIC (and hence LID, Lemmas 3–4)
// matching in O(m log m).
func LIC(s *pref.System, tbl *satisfaction.Table) *Matching {
	g := s.Graph()
	keys := make([]satisfaction.WeightKey, 0, g.NumEdges())
	for _, e := range g.Edges() {
		keys = append(keys, tbl.Key(e.U, e.V))
	}
	slices.SortFunc(keys, func(a, b satisfaction.WeightKey) int {
		if a.Heavier(b) {
			return -1
		}
		return 1
	})
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := New(g.NumNodes())
	for _, k := range keys {
		e := k.Edge()
		if counter[e.U] > 0 && counter[e.V] > 0 {
			m.Add(e.U, e.V)
			counter[e.U]--
			counter[e.V]--
		}
	}
	return m
}

// LICLiteral runs Algorithm 2 exactly as printed: maintain the edge
// pool P, repeatedly take *a* locally heaviest edge (chosen uniformly
// at random among all currently locally heaviest ones, driven by src),
// add it to the matching, decrement the endpoint counters, and drop all
// edges of saturated nodes. It is O(m²) and exists to witness Lemma 6:
// for any selection order the outcome equals LIC's.
func LICLiteral(s *pref.System, tbl *satisfaction.Table, src *rng.Source) *Matching {
	g := s.Graph()
	pool := make(map[graph.Edge]struct{}, g.NumEdges())
	for _, e := range g.Edges() {
		pool[e] = struct{}{}
	}
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := New(g.NumNodes())
	for len(pool) > 0 {
		// Collect all currently locally heaviest edges: heavier than
		// every other pool edge sharing an endpoint.
		candidates := locallyHeaviest(pool, tbl)
		e := candidates[src.Intn(len(candidates))]
		m.Add(e.U, e.V)
		delete(pool, e)
		counter[e.U]--
		counter[e.V]--
		for _, x := range []graph.NodeID{e.U, e.V} {
			if counter[x] == 0 {
				for _, nb := range g.Neighbors(x) {
					delete(pool, graph.Edge{U: x, V: nb}.Normalize())
				}
			}
		}
	}
	return m
}

// locallyHeaviest returns the pool edges that are heavier than every
// other pool edge sharing an endpoint (condition 3 over the set Eij of
// eq. 13 restricted to the current pool).
func locallyHeaviest(pool map[graph.Edge]struct{}, tbl *satisfaction.Table) []graph.Edge {
	// heaviestAt[x] = the heaviest pool edge incident to node x.
	heaviestAt := make(map[graph.NodeID]satisfaction.WeightKey)
	for e := range pool {
		k := tbl.Key(e.U, e.V)
		for _, x := range []graph.NodeID{e.U, e.V} {
			if best, ok := heaviestAt[x]; !ok || k.Heavier(best) {
				heaviestAt[x] = k
			}
		}
	}
	var out []graph.Edge
	for e := range pool {
		k := tbl.Key(e.U, e.V)
		if heaviestAt[e.U] == k && heaviestAt[e.V] == k {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
