package matching

import (
	"math/bits"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/par"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// LIC runs Algorithm 2 (Local Information-based Centralized) in its
// efficient sorted-scan form: edges are visited in decreasing weight
// order (the shared strict total order of satisfaction.WeightKey) and
// selected whenever both endpoints still have quota. By Lemma 6 the
// outcome of the literal "take any locally heaviest edge" loop is
// order-independent, and the descending scan is one valid such order,
// so this computes exactly the LIC (and hence LID, Lemmas 3–4)
// matching in O(m log m).
func LIC(s *pref.System, tbl *satisfaction.Table) *Matching {
	return LICParallel(s, tbl, 1)
}

// LICParallel is LIC with the radix sort (and the trivial fills) fanned
// out over `workers` goroutines (0 = GOMAXPROCS); see
// sortByOrderKeyParallel for why the sorted order — and therefore the
// matching — is bit-identical to LIC for any worker count. The greedy
// selection scan itself stays serial: it is a sequential dependence
// chain over the sorted order (each acceptance consumes quota the next
// decision reads) and it is O(m) with two array lookups per edge, far
// from the bottleneck. workers <= 1 is exactly the serial code path.
func LICParallel(s *pref.System, tbl *satisfaction.Table, workers int) *Matching {
	workers = par.Workers(workers)
	g := s.Graph()
	// Sort dense EdgeIDs, not WeightKey structs, and by the table's
	// packed order keys rather than a comparison function: a stable LSD
	// radix pass is O(m) and ties (equal weights) keep ascending EdgeID
	// order, which is exactly the canonical-endpoint tiebreak of
	// WeightKey.Heavier.
	ids := make([]graph.EdgeID, g.NumEdges())
	par.ForEachChunk(len(ids), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = graph.EdgeID(i)
		}
	})
	sortByOrderKeyParallel(ids, tbl.OrderKeys(), workers)
	counter := make([]int, g.NumNodes())
	par.ForEachChunk(len(counter), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			counter[i] = s.Quota(i)
		}
	})
	m := NewDense(g)
	m.preallocate(s)
	for _, id := range ids {
		e := g.EdgeByID(id)
		if counter[e.U] > 0 && counter[e.V] > 0 {
			m.addEdgeID(id, e)
			counter[e.U]--
			counter[e.V]--
		}
	}
	return m
}

// sortByOrderKey stable-sorts ids ascending by ord[id] (heaviest edge
// first — see satisfaction.Table.OrderKeys) with an LSD radix sort:
// 8-bit digits, one counting pass each, skipping digits on which all
// keys agree. Stability plus the ascending initial order makes equal
// keys come out in ascending EdgeID order.
func sortByOrderKey(ids []graph.EdgeID, ord []uint64) {
	if len(ids) < 2 {
		return
	}
	src, dst := ids, make([]graph.EdgeID, len(ids))
	var counts [256]int
	for shift := 0; shift < 64; shift += 8 {
		counts = [256]int{}
		for _, id := range src {
			counts[(ord[id]>>shift)&0xff]++
		}
		if counts[(ord[src[0]]>>shift)&0xff] == len(src) {
			continue // all keys share this digit
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, id := range src {
			d := (ord[id] >> shift) & 0xff
			dst[counts[d]] = id
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// SortEdgeIDs stable-sorts ids ascending by (ord[id], id) — the shared
// heaviest-first total order when ord is satisfaction.Table.OrderKeys —
// serially for workers <= 1 and with the sharded parallel radix sort
// otherwise (identical output either way). Exported for the benchmark
// driver and the equivalence tests; LIC callers never need it.
func SortEdgeIDs(ids []graph.EdgeID, ord []uint64, workers int) {
	sortByOrderKeyParallel(ids, ord, workers)
}

// parallelSortMin is the slice length below which the parallel radix
// sort falls back to the serial one: under ~64k keys the per-digit
// join overhead exceeds the counting work being split.
const parallelSortMin = 1 << 16

// sortByOrderKeyParallel is sortByOrderKey with each digit's counting
// and scatter passes sharded over contiguous ranges of src. The output
// is bit-identical to the serial sort: per digit, each shard counts its
// own 256-bucket histogram; the exclusive prefix sum runs serially over
// (digit, shard) in digit-major shard-minor order, handing every shard
// a disjoint set of destination cursors per bucket; the scatter then
// places each key at a position determined only by the histograms — so
// within a bucket, keys land shard by shard in scan order, which is
// exactly the serial stable order. No write is contended and no result
// depends on goroutine scheduling.
func sortByOrderKeyParallel(ids []graph.EdgeID, ord []uint64, workers int) {
	if workers <= 1 || len(ids) < parallelSortMin {
		sortByOrderKey(ids, ord)
		return
	}
	n := len(ids)
	src, dst := ids, make([]graph.EdgeID, n)
	shards := par.NumShards(n, workers)
	counts := make([][256]int, shards)
	for shift := 0; shift < 64; shift += 8 {
		par.ForEachShard(n, workers, func(sh, lo, hi int) {
			c := &counts[sh]
			*c = [256]int{}
			for _, id := range src[lo:hi] {
				c[(ord[id]>>shift)&0xff]++
			}
		})
		first := (ord[src[0]] >> shift) & 0xff
		onFirst := 0
		for sh := range counts {
			onFirst += counts[sh][first]
		}
		if onFirst == n {
			continue // all keys share this digit
		}
		sum := 0
		for d := 0; d < 256; d++ {
			for sh := 0; sh < shards; sh++ {
				c := counts[sh][d]
				counts[sh][d] = sum
				sum += c
			}
		}
		par.ForEachShard(n, workers, func(sh, lo, hi int) {
			c := &counts[sh]
			for _, id := range src[lo:hi] {
				d := (ord[id] >> shift) & 0xff
				dst[c[d]] = id
				c[d]++
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// LICLiteral runs Algorithm 2 exactly as printed: maintain the edge
// pool P, repeatedly take *a* locally heaviest edge (chosen uniformly
// at random among all currently locally heaviest ones, driven by src),
// add it to the matching, decrement the endpoint counters, and drop all
// edges of saturated nodes. It exists to witness Lemma 6: for any
// selection order the outcome equals LIC's.
//
// The pool is maintained incrementally instead of rescanned: each node
// keeps a cursor into its weight-ordered incident-edge list (the
// table's SortedIncident), pointing at its heaviest still-pooled edge,
// and an edge is locally heaviest exactly when both endpoint cursors
// point at it. Cursors only ever advance, so total maintenance is
// O(Σ deg) = O(m) plus a bitset rank per selection — O(m·Δ) overall
// where the per-call rescan loop was O(m²). Candidate selection order
// (ascending EdgeID = canonical lexicographic) and rng consumption are
// identical to the rescanning version, so outcomes are bit-identical.
func LICLiteral(s *pref.System, tbl *satisfaction.Table, src *rng.Source) *Matching {
	return LICLiteralParallel(s, tbl, src, 1)
}

// LICLiteralParallel is LICLiteral with the initial whole-pool
// candidate scan (the one O(m) pass over every edge) sharded over
// `workers` goroutines; the per-round cursor advances stay serial
// because each is O(1) amortized and causally follows the rng draw of
// its round. Shards are aligned to 64-bit words of the candidate
// bitset, so each worker owns a disjoint word range and a private
// count; counts fold in shard order after the join. The bitset and
// count — and the rng stream, draw for draw — are bit-identical to
// LICLiteral's for any worker count; workers <= 1 is exactly the
// serial code path.
func LICLiteralParallel(s *pref.System, tbl *satisfaction.Table, src *rng.Source, workers int) *Matching {
	workers = par.Workers(workers)
	g := s.Graph()
	nEdges := g.NumEdges()
	words := (nEdges + 63) / 64
	alive := make([]uint64, words)
	for i := 0; i < nEdges; i++ {
		alive[i>>6] |= 1 << (i & 63)
	}
	cand := make([]uint64, words)
	candN := 0
	cursor := make([]int32, g.NumNodes())
	sortedInc := make([][]graph.EdgeID, g.NumNodes())
	for x := 0; x < g.NumNodes(); x++ {
		sortedInc[x] = tbl.SortedIncident(s, x)
	}
	isAlive := func(id graph.EdgeID) bool { return alive[id>>6]&(1<<(id&63)) != 0 }
	// heaviestAt returns x's heaviest pooled incident edge, or -1.
	heaviestAt := func(x graph.NodeID) graph.EdgeID {
		if int(cursor[x]) < len(sortedInc[x]) {
			return sortedInc[x][cursor[x]]
		}
		return -1
	}
	setCand := func(id graph.EdgeID) {
		w, b := id>>6, uint64(1)<<(id&63)
		if cand[w]&b == 0 {
			cand[w] |= b
			candN++
		}
	}
	// advance moves x's cursor past dead edges; if the new heaviest is
	// also its other endpoint's heaviest, it just became locally
	// heaviest.
	advance := func(x graph.NodeID) {
		inc := sortedInc[x]
		for int(cursor[x]) < len(inc) && !isAlive(inc[cursor[x]]) {
			cursor[x]++
		}
		if int(cursor[x]) < len(inc) {
			id := inc[cursor[x]]
			if heaviestAt(g.OtherEndpoint(id, x)) == id {
				setCand(id)
			}
		}
	}
	aliveN := nEdges
	removeEdge := func(id graph.EdgeID) {
		w, b := id>>6, uint64(1)<<(id&63)
		alive[w] &^= b
		aliveN--
		if cand[w]&b != 0 {
			cand[w] &^= b
			candN--
		}
		e := g.EdgeByID(id)
		if heaviestAt(e.U) == id {
			advance(e.U)
		}
		if heaviestAt(e.V) == id {
			advance(e.V)
		}
	}
	// Initial candidates: both endpoint cursors sit at position 0.
	if workers <= 1 {
		for id := graph.EdgeID(0); int(id) < nEdges; id++ {
			e := g.EdgeByID(id)
			if heaviestAt(e.U) == id && heaviestAt(e.V) == id {
				setCand(id)
			}
		}
	} else {
		// Word-aligned shards: worker-private cand words and counts,
		// counts folded in shard order after the join. Every cursor is 0
		// and every edge alive, so "locally heaviest" reduces to heading
		// both endpoints' sorted incidence lists — a pure read of the
		// immutable table.
		shardCount := make([]int, par.NumShards(words, workers))
		par.ForEachShard(words, workers, func(sh, loW, hiW int) {
			total := 0
			for w := loW; w < hiW; w++ {
				var word uint64
				base := w << 6
				limit := nEdges - base
				if limit > 64 {
					limit = 64
				}
				for b := 0; b < limit; b++ {
					id := graph.EdgeID(base + b)
					e := g.EdgeByID(id)
					if sortedInc[e.U][0] == id && sortedInc[e.V][0] == id {
						word |= 1 << b
					}
				}
				cand[w] = word
				total += bits.OnesCount64(word)
			}
			shardCount[sh] = total
		})
		for _, c := range shardCount {
			candN += c
		}
	}
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := NewDense(g)
	m.preallocate(s)
	for aliveN > 0 {
		if candN == 0 {
			panic("matching: non-empty pool without a locally heaviest edge")
		}
		id := nthSetBit(cand, src.Intn(candN))
		e := g.EdgeByID(id)
		m.addEdgeID(id, e)
		counter[e.U]--
		counter[e.V]--
		removeEdge(id)
		for _, x := range [2]graph.NodeID{e.U, e.V} {
			if counter[x] == 0 {
				for _, eid := range g.IncidentEdges(x) {
					if isAlive(eid) {
						removeEdge(eid)
					}
				}
			}
		}
	}
	return m
}

// nthSetBit returns the position of the k-th (0-based) set bit of bs.
func nthSetBit(bs []uint64, k int) graph.EdgeID {
	for w, word := range bs {
		if c := bits.OnesCount64(word); k >= c {
			k -= c
			continue
		}
		for ; word != 0; word &= word - 1 {
			if k == 0 {
				return graph.EdgeID(w<<6 + bits.TrailingZeros64(word))
			}
			k--
		}
	}
	panic("matching: set-bit rank out of range")
}
