package matching

import (
	"math/bits"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// LIC runs Algorithm 2 (Local Information-based Centralized) in its
// efficient sorted-scan form: edges are visited in decreasing weight
// order (the shared strict total order of satisfaction.WeightKey) and
// selected whenever both endpoints still have quota. By Lemma 6 the
// outcome of the literal "take any locally heaviest edge" loop is
// order-independent, and the descending scan is one valid such order,
// so this computes exactly the LIC (and hence LID, Lemmas 3–4)
// matching in O(m log m).
func LIC(s *pref.System, tbl *satisfaction.Table) *Matching {
	g := s.Graph()
	// Sort dense EdgeIDs, not WeightKey structs, and by the table's
	// packed order keys rather than a comparison function: a stable LSD
	// radix pass is O(m) and ties (equal weights) keep ascending EdgeID
	// order, which is exactly the canonical-endpoint tiebreak of
	// WeightKey.Heavier.
	ids := make([]graph.EdgeID, g.NumEdges())
	for i := range ids {
		ids[i] = graph.EdgeID(i)
	}
	sortByOrderKey(ids, tbl.OrderKeys())
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := NewDense(g)
	m.preallocate(s)
	for _, id := range ids {
		e := g.EdgeByID(id)
		if counter[e.U] > 0 && counter[e.V] > 0 {
			m.addEdgeID(id, e)
			counter[e.U]--
			counter[e.V]--
		}
	}
	return m
}

// sortByOrderKey stable-sorts ids ascending by ord[id] (heaviest edge
// first — see satisfaction.Table.OrderKeys) with an LSD radix sort:
// 8-bit digits, one counting pass each, skipping digits on which all
// keys agree. Stability plus the ascending initial order makes equal
// keys come out in ascending EdgeID order.
func sortByOrderKey(ids []graph.EdgeID, ord []uint64) {
	if len(ids) < 2 {
		return
	}
	src, dst := ids, make([]graph.EdgeID, len(ids))
	var counts [256]int
	for shift := 0; shift < 64; shift += 8 {
		counts = [256]int{}
		for _, id := range src {
			counts[(ord[id]>>shift)&0xff]++
		}
		if counts[(ord[src[0]]>>shift)&0xff] == len(src) {
			continue // all keys share this digit
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for _, id := range src {
			d := (ord[id] >> shift) & 0xff
			dst[counts[d]] = id
			counts[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ids[0] {
		copy(ids, src)
	}
}

// LICLiteral runs Algorithm 2 exactly as printed: maintain the edge
// pool P, repeatedly take *a* locally heaviest edge (chosen uniformly
// at random among all currently locally heaviest ones, driven by src),
// add it to the matching, decrement the endpoint counters, and drop all
// edges of saturated nodes. It exists to witness Lemma 6: for any
// selection order the outcome equals LIC's.
//
// The pool is maintained incrementally instead of rescanned: each node
// keeps a cursor into its weight-ordered incident-edge list (the
// table's SortedIncident), pointing at its heaviest still-pooled edge,
// and an edge is locally heaviest exactly when both endpoint cursors
// point at it. Cursors only ever advance, so total maintenance is
// O(Σ deg) = O(m) plus a bitset rank per selection — O(m·Δ) overall
// where the per-call rescan loop was O(m²). Candidate selection order
// (ascending EdgeID = canonical lexicographic) and rng consumption are
// identical to the rescanning version, so outcomes are bit-identical.
func LICLiteral(s *pref.System, tbl *satisfaction.Table, src *rng.Source) *Matching {
	g := s.Graph()
	nEdges := g.NumEdges()
	words := (nEdges + 63) / 64
	alive := make([]uint64, words)
	for i := 0; i < nEdges; i++ {
		alive[i>>6] |= 1 << (i & 63)
	}
	cand := make([]uint64, words)
	candN := 0
	cursor := make([]int32, g.NumNodes())
	sortedInc := make([][]graph.EdgeID, g.NumNodes())
	for x := 0; x < g.NumNodes(); x++ {
		sortedInc[x] = tbl.SortedIncident(s, x)
	}
	isAlive := func(id graph.EdgeID) bool { return alive[id>>6]&(1<<(id&63)) != 0 }
	// heaviestAt returns x's heaviest pooled incident edge, or -1.
	heaviestAt := func(x graph.NodeID) graph.EdgeID {
		if int(cursor[x]) < len(sortedInc[x]) {
			return sortedInc[x][cursor[x]]
		}
		return -1
	}
	setCand := func(id graph.EdgeID) {
		w, b := id>>6, uint64(1)<<(id&63)
		if cand[w]&b == 0 {
			cand[w] |= b
			candN++
		}
	}
	// advance moves x's cursor past dead edges; if the new heaviest is
	// also its other endpoint's heaviest, it just became locally
	// heaviest.
	advance := func(x graph.NodeID) {
		inc := sortedInc[x]
		for int(cursor[x]) < len(inc) && !isAlive(inc[cursor[x]]) {
			cursor[x]++
		}
		if int(cursor[x]) < len(inc) {
			id := inc[cursor[x]]
			if heaviestAt(g.OtherEndpoint(id, x)) == id {
				setCand(id)
			}
		}
	}
	aliveN := nEdges
	removeEdge := func(id graph.EdgeID) {
		w, b := id>>6, uint64(1)<<(id&63)
		alive[w] &^= b
		aliveN--
		if cand[w]&b != 0 {
			cand[w] &^= b
			candN--
		}
		e := g.EdgeByID(id)
		if heaviestAt(e.U) == id {
			advance(e.U)
		}
		if heaviestAt(e.V) == id {
			advance(e.V)
		}
	}
	// Initial candidates: both endpoint cursors sit at position 0.
	for id := graph.EdgeID(0); int(id) < nEdges; id++ {
		e := g.EdgeByID(id)
		if heaviestAt(e.U) == id && heaviestAt(e.V) == id {
			setCand(id)
		}
	}
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := NewDense(g)
	m.preallocate(s)
	for aliveN > 0 {
		if candN == 0 {
			panic("matching: non-empty pool without a locally heaviest edge")
		}
		id := nthSetBit(cand, src.Intn(candN))
		e := g.EdgeByID(id)
		m.addEdgeID(id, e)
		counter[e.U]--
		counter[e.V]--
		removeEdge(id)
		for _, x := range [2]graph.NodeID{e.U, e.V} {
			if counter[x] == 0 {
				for _, eid := range g.IncidentEdges(x) {
					if isAlive(eid) {
						removeEdge(eid)
					}
				}
			}
		}
	}
	return m
}

// nthSetBit returns the position of the k-th (0-based) set bit of bs.
func nthSetBit(bs []uint64, k int) graph.EdgeID {
	for w, word := range bs {
		if c := bits.OnesCount64(word); k >= c {
			k -= c
			continue
		}
		for ; word != 0; word &= word - 1 {
			if k == 0 {
				return graph.EdgeID(w<<6 + bits.TrailingZeros64(word))
			}
			k--
		}
	}
	panic("matching: set-bit rank out of range")
}
