package matching

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

func TestRandomMaximalFeasibleAndMaximal(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+3, 0.5, int(bRaw)%3+1)
		m := RandomMaximal(s, rng.New(seed+99))
		if m.Validate(s) != nil {
			return false
		}
		for _, e := range s.Graph().Edges() {
			if m.Has(e.U, e.V) {
				continue
			}
			if m.DegreeOf(e.U) < s.Quota(e.U) && m.DegreeOf(e.V) < s.Quota(e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfishTopBOnlyMutualProposals(t *testing.T) {
	s := randomSystem(t, 5, 12, 0.6, 2)
	m := SelfishTopB(s)
	if err := m.Validate(s); err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Edges() {
		ru, rv := s.Rank(e.U, e.V), s.Rank(e.V, e.U)
		if ru >= s.Quota(e.U) || rv >= s.Quota(e.V) {
			t.Fatalf("edge %v selected without mutual top-b interest (ranks %d,%d)", e, ru, rv)
		}
	}
	// Conversely: every mutually-top-b edge must be selected.
	for _, e := range s.Graph().Edges() {
		if s.Rank(e.U, e.V) < s.Quota(e.U) && s.Rank(e.V, e.U) < s.Quota(e.V) && !m.Has(e.U, e.V) {
			t.Fatalf("mutual edge %v not selected", e)
		}
	}
}

func TestSelfishNeverBeatsLICWeight(t *testing.T) {
	// Selfish connections are a subset of feasible edges with no
	// coordination; LIC should never have lower weight on these
	// workloads (LIC is maximal and weight-greedy).
	for seed := uint64(0); seed < 30; seed++ {
		s := randomSystem(t, seed, 14, 0.5, 2)
		tbl := satisfaction.NewTable(s)
		lic := LIC(s, tbl).Weight(s)
		selfish := SelfishTopB(s).Weight(s)
		if selfish > lic+1e-9 {
			t.Fatalf("seed %d: selfish weight %v > LIC %v", seed, selfish, lic)
		}
	}
}

func TestBestResponseConvergesOnAcyclic(t *testing.T) {
	// Acyclic systems (symmetric scores) must converge and be stable.
	for seed := uint64(0); seed < 20; seed++ {
		src := rng.New(seed)
		g := gen.GNP(src, 15, 0.4)
		s, err := pref.Build(g, pref.NewSymmetricRandomMetric(src.Split()), pref.UniformQuota(2))
		if err != nil {
			t.Fatal(err)
		}
		res := BestResponse(s, rng.New(seed+1), 100000)
		if !res.Converged {
			t.Fatalf("seed %d: best response did not converge on acyclic system", seed)
		}
		if err := res.M.Validate(s); err != nil {
			t.Fatal(err)
		}
		// Stability: no blocking pair.
		for _, e := range g.Edges() {
			if res.M.Has(e.U, e.V) {
				continue
			}
			if wouldAccept(s, res.M, e.U, e.V) && wouldAccept(s, res.M, e.V, e.U) {
				t.Fatalf("seed %d: blocking pair %v remains", seed, e)
			}
		}
	}
}

func TestBestResponseActivationCap(t *testing.T) {
	s := randomSystem(t, 3, 12, 0.6, 2)
	res := BestResponse(s, rng.New(4), 3)
	if res.Activations > 3 {
		t.Fatalf("activations %d exceeded cap", res.Activations)
	}
	if err := res.M.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestBestResponseStableOnClassicCycle(t *testing.T) {
	// The classic cyclic triangle with b=1: dynamics oscillate; with a
	// cap they must stop and report the remaining blocking pair.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	s, err := pref.FromRanks(g,
		[][]graph.NodeID{{1, 2}, {2, 0}, {0, 1}},
		[]int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res := BestResponse(s, rng.New(7), 1000)
	// One node always stays single and prefers someone who prefers their
	// current partner less... in the 3-cycle with b=1 there is always a
	// blocking pair: dynamics cannot converge.
	if res.Converged {
		t.Fatal("cyclic triangle reported converged")
	}
	if res.Activations != 1000 {
		t.Fatalf("activations = %d, want cap 1000", res.Activations)
	}
}

func TestWorstConnectionPanicsOnUnmatched(t *testing.T) {
	s := randomSystem(t, 1, 5, 1.0, 1)
	m := New(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	worstConnection(s, m, 0)
}
