// Package matching implements many-to-many matchings on preference
// systems: the Matching container with the paper's feasibility
// constraints (§2: at most bi connections per node, only graph edges),
// the centralized LIC algorithm (§6, Algorithm 2) in both its
// literal locally-heaviest form and the equivalent sorted-scan form,
// exact branch-and-bound oracles for the maximum-weight and
// maximum-satisfaction objectives (the OPT comparators of Theorems 2
// and 3), and the baseline strategies the experiment suite compares
// against.
package matching

import (
	"fmt"
	"math/bits"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Matching is a set of selected edges ("connections") over a graph,
// tracked per node. The zero value is unusable; use New or NewDense.
//
// Two representations share one API. The sparse form (New) keeps only
// the per-node connection slices — membership scans conns[u], which is
// bounded by the quota and so effectively constant. The dense form
// (NewDense) additionally keeps an EdgeID-indexed bitset over a known
// graph, giving O(log deg) membership and edge enumeration straight in
// canonical order. Both forms present identical observable behavior;
// Edges() iterates in canonical lexicographic order either way.
type Matching struct {
	n     int
	size  int
	conns [][]graph.NodeID

	g    *graph.Graph // nil in sparse mode
	bits []uint64     // EdgeID bitset, dense mode only
}

// New returns an empty matching over n nodes in sparse mode, for
// assemblies that know only the node count (e.g. collecting protocol
// outcomes).
func New(n int) *Matching {
	return &Matching{
		n:     n,
		conns: make([][]graph.NodeID, n),
	}
}

// NewDense returns an empty matching bound to g, backed by a dense
// EdgeID bitset. Algorithms that hold the graph use this form: Add and
// Has run off the CSR edge index with no hashing and no per-edge map
// entries.
func NewDense(g *graph.Graph) *Matching {
	return &Matching{
		n:     g.NumNodes(),
		conns: make([][]graph.NodeID, g.NumNodes()),
		g:     g,
		bits:  make([]uint64, (g.NumEdges()+63)/64),
	}
}

// NumNodes returns the number of nodes the matching ranges over.
func (m *Matching) NumNodes() int { return m.n }

// Size returns the number of selected edges.
func (m *Matching) Size() int { return m.size }

// Has reports whether edge {u,v} is selected.
func (m *Matching) Has(u, v graph.NodeID) bool {
	if m.g != nil {
		id, ok := m.g.EdgeIDOf(u, v)
		return ok && m.bits[id>>6]&(1<<(id&63)) != 0
	}
	if u < 0 || u >= m.n {
		return false
	}
	for _, x := range m.conns[u] {
		if x == v {
			return true
		}
	}
	return false
}

// Add selects edge {u,v}. It panics on self loops, out-of-range nodes,
// or already-selected edges: algorithms are expected to know what they
// add. In dense mode it also panics on non-graph edges, which Validate
// would reject later anyway.
func (m *Matching) Add(u, v graph.NodeID) {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range [0,%d)", u, v, m.n))
	}
	if u == v {
		panic(fmt.Sprintf("matching: self loop at %d", u))
	}
	if m.g != nil {
		id, ok := m.g.EdgeIDOf(u, v)
		if !ok {
			panic(fmt.Sprintf("matching: edge (%d,%d) is not a graph edge", u, v))
		}
		if m.bits[id>>6]&(1<<(id&63)) != 0 {
			panic(fmt.Sprintf("matching: edge %v selected twice", graph.Edge{U: u, V: v}.Normalize()))
		}
		m.bits[id>>6] |= 1 << (id & 63)
	} else if m.Has(u, v) {
		panic(fmt.Sprintf("matching: edge %v selected twice", graph.Edge{U: u, V: v}.Normalize()))
	}
	m.size++
	m.conns[u] = append(m.conns[u], v)
	m.conns[v] = append(m.conns[v], u)
}

// preallocate sizes every connection slice to its feasibility bound
// min(quota, degree) out of one flat backing array, so subsequent Adds
// never reallocate. Dense mode only; callers must hold the system the
// matching will be filled under.
func (m *Matching) preallocate(s *pref.System) {
	total := 0
	for i := 0; i < m.n; i++ {
		c := s.Quota(i)
		if d := m.g.Degree(i); d < c {
			c = d
		}
		total += c
	}
	buf := make([]graph.NodeID, total)
	off := 0
	for i := 0; i < m.n; i++ {
		c := s.Quota(i)
		if d := m.g.Degree(i); d < c {
			c = d
		}
		m.conns[i] = buf[off:off : off+c]
		off += c
	}
}

// addEdgeID is Add for dense-mode callers that already hold the edge's
// id and endpoints (skipping the id lookup and the double-selection
// check — the algorithms in this package add each edge at most once).
func (m *Matching) addEdgeID(id graph.EdgeID, e graph.Edge) {
	m.bits[id>>6] |= 1 << (id & 63)
	m.size++
	m.conns[e.U] = append(m.conns[e.U], e.V)
	m.conns[e.V] = append(m.conns[e.V], e.U)
}

// Remove deselects edge {u,v}. It panics if the edge is not selected.
func (m *Matching) Remove(u, v graph.NodeID) {
	if !m.Has(u, v) {
		panic(fmt.Sprintf("matching: removing unselected edge %v", graph.Edge{U: u, V: v}.Normalize()))
	}
	if m.g != nil {
		id, _ := m.g.EdgeIDOf(u, v)
		m.bits[id>>6] &^= 1 << (id & 63)
	}
	m.size--
	m.conns[u] = removeOne(m.conns[u], v)
	m.conns[v] = removeOne(m.conns[v], u)
}

func removeOne(s []graph.NodeID, x graph.NodeID) []graph.NodeID {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	panic(fmt.Sprintf("matching: connection list inconsistent, %d missing", x))
}

// Connections returns the nodes matched to i, sorted ascending. The
// result is freshly allocated.
func (m *Matching) Connections(i graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), m.conns[i]...)
	sort.Ints(out)
	return out
}

// DegreeOf returns the number of connections node i holds (ci).
func (m *Matching) DegreeOf(i graph.NodeID) int { return len(m.conns[i]) }

// Edges returns the selected edges in canonical sorted order. Dense
// mode walks the bitset — ascending EdgeID is exactly canonical order;
// sparse mode collects each node's higher-numbered connections.
func (m *Matching) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, m.size)
	if m.g != nil {
		for w, word := range m.bits {
			for ; word != 0; word &= word - 1 {
				id := graph.EdgeID(w<<6 + bits.TrailingZeros64(word))
				out = append(out, m.g.EdgeByID(id))
			}
		}
		return out
	}
	for u := 0; u < m.n; u++ {
		start := len(out)
		for _, v := range m.conns[u] {
			if v > u {
				out = append(out, graph.Edge{U: u, V: v})
			}
		}
		tail := out[start:]
		sort.Slice(tail, func(i, j int) bool { return tail[i].V < tail[j].V })
	}
	return out
}

// Clone returns a deep copy (same representation, same graph binding).
func (m *Matching) Clone() *Matching {
	var c *Matching
	if m.g != nil {
		c = NewDense(m.g)
	} else {
		c = New(m.n)
	}
	for _, e := range m.Edges() {
		c.Add(e.U, e.V)
	}
	return c
}

// Equal reports whether two matchings select exactly the same edges,
// regardless of representation.
func (m *Matching) Equal(o *Matching) bool {
	if m.n != o.n || m.size != o.size {
		return false
	}
	if m.g != nil && m.g == o.g {
		for w, word := range m.bits {
			if word != o.bits[w] {
				return false
			}
		}
		return true
	}
	for u := 0; u < m.n; u++ {
		if len(m.conns[u]) != len(o.conns[u]) {
			return false
		}
	}
	for u := 0; u < m.n; u++ {
		for _, v := range m.conns[u] {
			if v > u && !o.Has(u, v) {
				return false
			}
		}
	}
	return true
}

// Validate checks feasibility against a preference system: every
// selected edge must be a graph edge and every node must respect its
// quota.
func (m *Matching) Validate(s *pref.System) error {
	g := s.Graph()
	if m.n != g.NumNodes() {
		return fmt.Errorf("matching: %d nodes, graph has %d", m.n, g.NumNodes())
	}
	for u := 0; u < m.n; u++ {
		for _, v := range m.conns[u] {
			if u < v && !g.HasEdge(u, v) {
				return fmt.Errorf("matching: selected non-edge %v", graph.Edge{U: u, V: v})
			}
		}
	}
	for i := 0; i < m.n; i++ {
		if len(m.conns[i]) > s.Quota(i) {
			return fmt.Errorf("matching: node %d has %d connections, quota %d",
				i, len(m.conns[i]), s.Quota(i))
		}
	}
	return nil
}

// Weight returns the matching's total eq.-9 weight under system s.
// Summation follows the canonical edge order so the result is
// bit-for-bit deterministic across runs.
func (m *Matching) Weight(s *pref.System) float64 {
	var w float64
	for _, e := range m.Edges() {
		w += satisfaction.EdgeWeight(s, e)
	}
	return w
}

// TotalSatisfaction returns Σi Si (eq. 1) under system s — the
// objective of the maximizing-satisfaction b-matching problem.
func (m *Matching) TotalSatisfaction(s *pref.System) float64 {
	var total float64
	for i := 0; i < m.n; i++ {
		total += satisfaction.Value(s, i, m.conns[i])
	}
	return total
}

// TotalModifiedSatisfaction returns Σi S̄i (eq. 6) — the objective of
// the modified (static-only) problem. By Lemma 2 this equals Weight.
func (m *Matching) TotalModifiedSatisfaction(s *pref.System) float64 {
	var total float64
	for i := 0; i < m.n; i++ {
		total += satisfaction.ModifiedValue(s, i, m.conns[i])
	}
	return total
}

// PerNodeSatisfaction returns each node's Si (eq. 1).
func (m *Matching) PerNodeSatisfaction(s *pref.System) []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		out[i] = satisfaction.Value(s, i, m.conns[i])
	}
	return out
}

// String returns e.g. "matching{edges=5}".
func (m *Matching) String() string {
	return fmt.Sprintf("matching{edges=%d}", m.size)
}
