// Package matching implements many-to-many matchings on preference
// systems: the Matching container with the paper's feasibility
// constraints (§2: at most bi connections per node, only graph edges),
// the centralized LIC algorithm (§6, Algorithm 2) in both its
// literal locally-heaviest form and the equivalent sorted-scan form,
// exact branch-and-bound oracles for the maximum-weight and
// maximum-satisfaction objectives (the OPT comparators of Theorems 2
// and 3), and the baseline strategies the experiment suite compares
// against.
package matching

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// Matching is a set of selected edges ("connections") over a graph,
// tracked per node. The zero value is unusable; use New.
type Matching struct {
	n     int
	conns [][]graph.NodeID
	edges map[graph.Edge]struct{}
}

// New returns an empty matching over n nodes.
func New(n int) *Matching {
	return &Matching{
		n:     n,
		conns: make([][]graph.NodeID, n),
		edges: make(map[graph.Edge]struct{}),
	}
}

// NumNodes returns the number of nodes the matching ranges over.
func (m *Matching) NumNodes() int { return m.n }

// Size returns the number of selected edges.
func (m *Matching) Size() int { return len(m.edges) }

// Has reports whether edge {u,v} is selected.
func (m *Matching) Has(u, v graph.NodeID) bool {
	_, ok := m.edges[graph.Edge{U: u, V: v}.Normalize()]
	return ok
}

// Add selects edge {u,v}. It panics on self loops, out-of-range nodes,
// or already-selected edges: algorithms are expected to know what they
// add.
func (m *Matching) Add(u, v graph.NodeID) {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range [0,%d)", u, v, m.n))
	}
	if u == v {
		panic(fmt.Sprintf("matching: self loop at %d", u))
	}
	e := graph.Edge{U: u, V: v}.Normalize()
	if _, dup := m.edges[e]; dup {
		panic(fmt.Sprintf("matching: edge %v selected twice", e))
	}
	m.edges[e] = struct{}{}
	m.conns[u] = append(m.conns[u], v)
	m.conns[v] = append(m.conns[v], u)
}

// Remove deselects edge {u,v}. It panics if the edge is not selected.
func (m *Matching) Remove(u, v graph.NodeID) {
	e := graph.Edge{U: u, V: v}.Normalize()
	if _, ok := m.edges[e]; !ok {
		panic(fmt.Sprintf("matching: removing unselected edge %v", e))
	}
	delete(m.edges, e)
	m.conns[u] = removeOne(m.conns[u], v)
	m.conns[v] = removeOne(m.conns[v], u)
}

func removeOne(s []graph.NodeID, x graph.NodeID) []graph.NodeID {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	panic(fmt.Sprintf("matching: connection list inconsistent, %d missing", x))
}

// Connections returns the nodes matched to i, sorted ascending. The
// result is freshly allocated.
func (m *Matching) Connections(i graph.NodeID) []graph.NodeID {
	out := append([]graph.NodeID(nil), m.conns[i]...)
	sort.Ints(out)
	return out
}

// DegreeOf returns the number of connections node i holds (ci).
func (m *Matching) DegreeOf(i graph.NodeID) int { return len(m.conns[i]) }

// Edges returns the selected edges in canonical sorted order.
func (m *Matching) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(m.edges))
	for e := range m.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy.
func (m *Matching) Clone() *Matching {
	c := New(m.n)
	for e := range m.edges {
		c.Add(e.U, e.V)
	}
	return c
}

// Equal reports whether two matchings select exactly the same edges.
func (m *Matching) Equal(o *Matching) bool {
	if m.n != o.n || len(m.edges) != len(o.edges) {
		return false
	}
	for e := range m.edges {
		if _, ok := o.edges[e]; !ok {
			return false
		}
	}
	return true
}

// Validate checks feasibility against a preference system: every
// selected edge must be a graph edge and every node must respect its
// quota.
func (m *Matching) Validate(s *pref.System) error {
	g := s.Graph()
	if m.n != g.NumNodes() {
		return fmt.Errorf("matching: %d nodes, graph has %d", m.n, g.NumNodes())
	}
	for e := range m.edges {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("matching: selected non-edge %v", e)
		}
	}
	for i := 0; i < m.n; i++ {
		if len(m.conns[i]) > s.Quota(i) {
			return fmt.Errorf("matching: node %d has %d connections, quota %d",
				i, len(m.conns[i]), s.Quota(i))
		}
	}
	return nil
}

// Weight returns the matching's total eq.-9 weight under system s.
// Summation follows the canonical edge order so the result is
// bit-for-bit deterministic across runs.
func (m *Matching) Weight(s *pref.System) float64 {
	var w float64
	for _, e := range m.Edges() {
		w += satisfaction.EdgeWeight(s, e)
	}
	return w
}

// TotalSatisfaction returns Σi Si (eq. 1) under system s — the
// objective of the maximizing-satisfaction b-matching problem.
func (m *Matching) TotalSatisfaction(s *pref.System) float64 {
	var total float64
	for i := 0; i < m.n; i++ {
		total += satisfaction.Value(s, i, m.conns[i])
	}
	return total
}

// TotalModifiedSatisfaction returns Σi S̄i (eq. 6) — the objective of
// the modified (static-only) problem. By Lemma 2 this equals Weight.
func (m *Matching) TotalModifiedSatisfaction(s *pref.System) float64 {
	var total float64
	for i := 0; i < m.n; i++ {
		total += satisfaction.ModifiedValue(s, i, m.conns[i])
	}
	return total
}

// PerNodeSatisfaction returns each node's Si (eq. 1).
func (m *Matching) PerNodeSatisfaction(s *pref.System) []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		out[i] = satisfaction.Value(s, i, m.conns[i])
	}
	return out
}

// String returns e.g. "matching{edges=5}".
func (m *Matching) String() string {
	return fmt.Sprintf("matching{edges=%d}", len(m.edges))
}
