package matching

import (
	"math"
	"reflect"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) <= 1e-9 }

// randomSystem builds a G(n,p) graph with random private preferences
// and uniform quota b.
func randomSystem(tb testing.TB, seed uint64, n int, p float64, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestMatchingAddRemove(t *testing.T) {
	m := New(4)
	m.Add(0, 1)
	m.Add(2, 1)
	if !m.Has(1, 0) || !m.Has(1, 2) {
		t.Fatal("Has failed after Add")
	}
	if m.Size() != 2 || m.DegreeOf(1) != 2 || m.DegreeOf(3) != 0 {
		t.Fatal("sizes wrong")
	}
	if want := []graph.NodeID{0, 2}; !reflect.DeepEqual(m.Connections(1), want) {
		t.Fatalf("Connections(1) = %v", m.Connections(1))
	}
	m.Remove(1, 0)
	if m.Has(0, 1) || m.Size() != 1 || m.DegreeOf(1) != 1 {
		t.Fatal("Remove incomplete")
	}
}

func TestMatchingEdgesSorted(t *testing.T) {
	m := New(5)
	m.Add(3, 4)
	m.Add(0, 2)
	m.Add(1, 0)
	want := []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 3, V: 4}}
	if got := m.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
}

func TestMatchingPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"self loop":     func() { New(3).Add(1, 1) },
		"out of range":  func() { New(3).Add(0, 3) },
		"negative":      func() { New(3).Add(-1, 0) },
		"double add":    func() { m := New(3); m.Add(0, 1); m.Add(1, 0) },
		"remove absent": func() { New(3).Remove(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(4)
	m.Add(0, 1)
	c := m.Clone()
	c.Add(2, 3)
	if m.Has(2, 3) {
		t.Fatal("Clone shares state")
	}
	if !c.Has(0, 1) {
		t.Fatal("Clone lost edges")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(4), New(4)
	a.Add(0, 1)
	b.Add(1, 0)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("orientation should not matter")
	}
	b.Add(2, 3)
	if a.Equal(b) {
		t.Fatal("different sizes reported equal")
	}
	c := New(5)
	c.Add(0, 1)
	if a.Equal(c) {
		t.Fatal("different node counts reported equal")
	}
	d := New(4)
	d.Add(0, 2)
	a2 := New(4)
	a2.Add(0, 1)
	if d.Equal(a2) {
		t.Fatal("different edges reported equal")
	}
}

func TestValidate(t *testing.T) {
	s := randomSystem(t, 1, 8, 0.9, 2)
	g := s.Graph()
	m := New(g.NumNodes())
	// Valid: take up to quota edges per node.
	e := g.Edges()[0]
	m.Add(e.U, e.V)
	if err := m.Validate(s); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	// Non-edge selection.
	bad := New(g.NumNodes())
	found := false
	for u := 0; u < g.NumNodes() && !found; u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			if !g.HasEdge(u, v) {
				bad.Add(u, v)
				found = true
				break
			}
		}
	}
	if found {
		if err := bad.Validate(s); err == nil {
			t.Fatal("non-edge accepted")
		}
	}
	// Quota violation.
	over := New(g.NumNodes())
	added := 0
	for _, nb := range g.Neighbors(0) {
		over.Add(0, nb)
		added++
	}
	if added > s.Quota(0) {
		if err := over.Validate(s); err == nil {
			t.Fatal("quota violation accepted")
		}
	}
	// Node count mismatch.
	if err := New(3).Validate(s); err == nil {
		t.Fatal("node count mismatch accepted")
	}
}

// TestWeightEqualsModifiedSatisfaction pins Lemma 2's accounting
// identity: for ANY feasible matching, Σ w(i,j) over selected edges
// equals Σi S̄i — the regrouping in eq. 12.
func TestWeightEqualsModifiedSatisfaction(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		s := randomSystem(t, seed, 10, 0.5, 2)
		src := rng.New(seed ^ 0xff)
		m := RandomMaximal(s, src)
		if err := m.Validate(s); err != nil {
			t.Fatal(err)
		}
		if w, ms := m.Weight(s), m.TotalModifiedSatisfaction(s); !almostEqual(w, ms) {
			t.Fatalf("seed %d: weight %v != modified satisfaction %v", seed, w, ms)
		}
	}
}

func TestTotalSatisfactionMatchesPerNode(t *testing.T) {
	s := randomSystem(t, 4, 9, 0.6, 2)
	m := RandomMaximal(s, rng.New(8))
	per := m.PerNodeSatisfaction(s)
	var sum float64
	for _, v := range per {
		sum += v
	}
	if !almostEqual(sum, m.TotalSatisfaction(s)) {
		t.Fatal("per-node sum disagrees with total")
	}
	for i, v := range per {
		if want := satisfaction.Value(s, i, m.Connections(i)); !almostEqual(v, want) {
			t.Fatalf("node %d satisfaction %v, want %v", i, v, want)
		}
	}
}

func TestString(t *testing.T) {
	m := New(3)
	m.Add(0, 1)
	if got := m.String(); got != "matching{edges=1}" {
		t.Fatalf("String = %q", got)
	}
}
