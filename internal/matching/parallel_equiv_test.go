package matching

import (
	"fmt"
	"testing"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// This file is the equivalence guard for the deterministic parallel
// layer, mirroring denseequiv_test.go's role for the dense refactor:
// every parallel entry point is swept against workers=1 (the exact
// legacy code path) over the same seeded corpus — gnp, geometric and
// ba topologies, quotas 1..4 — and over worker counts that exercise
// uneven shard splits and oversubscription. "Equivalent" here means
// bit-identical: same edges, same weights, same rng consumption.

// parallelWorkerGrid deliberately includes prime and oversubscribed
// counts; 1 is covered implicitly as the serial reference.
var parallelWorkerGrid = []int{2, 3, 8}

func TestParallelEquivalenceSweep(t *testing.T) {
	systems := equivSystems(t)
	if len(systems) < 200 {
		t.Fatalf("guard corpus too small: %d systems", len(systems))
	}
	for si, s := range systems {
		si, s := si, s
		t.Run(fmt.Sprintf("sys%03d", si), func(t *testing.T) {
			g := s.Graph()
			ref := satisfaction.NewTable(s)
			refLICm := LIC(s, ref)
			seed := uint64(si)*13 + 5
			refLit := LICLiteral(s, ref, rng.New(seed))
			for _, w := range parallelWorkerGrid {
				tbl := satisfaction.NewTableParallel(s, w)
				for id := 0; id < g.NumEdges(); id++ {
					if tbl.KeyByID(graph.EdgeID(id)) != ref.KeyByID(graph.EdgeID(id)) ||
						tbl.OrderKeys()[id] != ref.OrderKeys()[id] {
						t.Fatalf("workers=%d: table entry %d diverged", w, id)
					}
				}
				got := LICParallel(s, tbl, w)
				if !got.Equal(refLICm) {
					t.Fatalf("workers=%d: LICParallel diverged: %v vs %v", w, got.Edges(), refLICm.Edges())
				}
				// Same rng seed must reproduce the literal run draw for
				// draw through the sharded initial candidate scan.
				lit := LICLiteralParallel(s, tbl, rng.New(seed), w)
				if !lit.Equal(refLit) {
					t.Fatalf("workers=%d: LICLiteralParallel diverged: %v vs %v", w, lit.Edges(), refLit.Edges())
				}
			}
		})
	}
}

// TestSortEdgeIDsParallelBig drives the sharded radix sort above its
// serial-fallback threshold with adversarial key distributions: heavy
// duplication (stability must hold — ties keep ascending EdgeID
// order), already-sorted, reverse-sorted, constant (every digit
// skipped), and uniform random. Output must equal the serial sort
// element for element.
func TestSortEdgeIDsParallelBig(t *testing.T) {
	if testing.Short() {
		t.Skip("large sort corpus")
	}
	n := parallelSortMin * 3
	shapes := []struct {
		name string
		gen  func(i int, src *rng.Source) uint64
	}{
		{"uniform", func(i int, src *rng.Source) uint64 { return src.Uint64() }},
		{"dup16", func(i int, src *rng.Source) uint64 { return src.Uint64n(16) }},
		{"ascending", func(i int, src *rng.Source) uint64 { return uint64(i) }},
		{"descending", func(i int, src *rng.Source) uint64 { return uint64(n - i) }},
		{"constant", func(i int, src *rng.Source) uint64 { return 0x1234_5678_9abc_def0 }},
		{"lowbyte", func(i int, src *rng.Source) uint64 { return src.Uint64n(256) }},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			src := rng.New(uint64(len(shape.name)) * 7919)
			ord := make([]uint64, n)
			for i := range ord {
				ord[i] = shape.gen(i, src)
			}
			want := make([]graph.EdgeID, n)
			for i := range want {
				want[i] = graph.EdgeID(i)
			}
			SortEdgeIDs(want, ord, 1)
			for _, w := range parallelWorkerGrid {
				got := make([]graph.EdgeID, n)
				for i := range got {
					got[i] = graph.EdgeID(i)
				}
				sortByOrderKeyParallel(got, ord, w)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: position %d is edge %d, serial says %d", w, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestLICParallelLargeSystem runs one system big enough that the
// parallel radix path (not the small-slice serial fallback) actually
// executes inside LICParallel, and checks the matching is identical.
func TestLICParallelLargeSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("large system")
	}
	s := randomSystem(t, 777, 20_000, 8.0/19_999, 3)
	if s.Graph().NumEdges() < parallelSortMin {
		t.Fatalf("test system too small to reach the parallel sort: m=%d", s.Graph().NumEdges())
	}
	tbl := satisfaction.NewTable(s)
	ref := LIC(s, tbl)
	for _, w := range parallelWorkerGrid {
		if got := LICParallel(s, satisfaction.NewTableParallel(s, w), w); !got.Equal(ref) {
			t.Fatalf("workers=%d: large-system LICParallel diverged", w)
		}
	}
}
