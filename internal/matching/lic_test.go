package matching

import (
	"testing"
	"testing/quick"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

func TestLICFeasible(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%20+2, 0.5, int(bRaw)%4+1)
		m := LIC(s, satisfaction.NewTable(s))
		return m.Validate(s) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLICMaximal(t *testing.T) {
	// LIC output is maximal: no remaining edge fits both quotas.
	check := func(seed uint64, nRaw uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%15+3, 0.6, 2)
		m := LIC(s, satisfaction.NewTable(s))
		for _, e := range s.Graph().Edges() {
			if m.Has(e.U, e.V) {
				continue
			}
			if m.DegreeOf(e.U) < s.Quota(e.U) && m.DegreeOf(e.V) < s.Quota(e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLICQuotaOneIsMatching(t *testing.T) {
	// With b=1 everywhere the result must be a classical matching:
	// no two selected edges share an endpoint.
	s := randomSystem(t, 12, 14, 0.6, 1)
	m := LIC(s, satisfaction.NewTable(s))
	seen := make(map[graph.NodeID]bool)
	for _, e := range m.Edges() {
		if seen[e.U] || seen[e.V] {
			t.Fatal("b=1 result is not a matching")
		}
		seen[e.U], seen[e.V] = true, true
	}
}

// TestLemma6OrderIndependence: the literal Algorithm 2 with random
// locally-heaviest choices must produce exactly the sorted-scan LIC
// edge set, for every instance and every selection order.
func TestLemma6OrderIndependence(t *testing.T) {
	check := func(seed uint64, nRaw, bRaw, orderSeed uint8) bool {
		s := randomSystem(t, seed, int(nRaw)%12+3, 0.5, int(bRaw)%3+1)
		tbl := satisfaction.NewTable(s)
		want := LIC(s, tbl)
		got := LICLiteral(s, tbl, rng.New(uint64(orderSeed)))
		return got.Equal(want)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestLemma4ChosenHeavierThanUnchosen(t *testing.T) {
	// Lemma 4: for every node, every selected incident edge outweighs
	// every incident edge that was available when the node saturated —
	// in particular any unselected incident edge whose other endpoint
	// also has spare... the clean checkable form: if node i is
	// saturated, each unselected incident edge with an unsaturated
	// other endpoint must be lighter than i's lightest selected edge.
	for seed := uint64(0); seed < 50; seed++ {
		s := randomSystem(t, seed, 12, 0.6, 2)
		tbl := satisfaction.NewTable(s)
		m := LIC(s, tbl)
		g := s.Graph()
		for i := 0; i < g.NumNodes(); i++ {
			if m.DegreeOf(i) < s.Quota(i) {
				continue
			}
			// lightest selected edge at i
			var lightest *satisfaction.WeightKey
			for _, j := range m.Connections(i) {
				k := tbl.Key(i, j)
				if lightest == nil || lightest.Heavier(k) {
					kk := k
					lightest = &kk
				}
			}
			for _, j := range g.Neighbors(i) {
				if m.Has(i, j) {
					continue
				}
				if m.DegreeOf(j) < s.Quota(j) {
					if k := tbl.Key(i, j); k.Heavier(*lightest) {
						t.Fatalf("seed %d: node %d kept %v over heavier available %v",
							seed, i, lightest, k)
					}
				}
			}
		}
	}
}

func TestLICDeterministic(t *testing.T) {
	s := randomSystem(t, 77, 20, 0.4, 3)
	tbl := satisfaction.NewTable(s)
	if !LIC(s, tbl).Equal(LIC(s, tbl)) {
		t.Fatal("LIC not deterministic")
	}
}

func TestLICEmptyAndTrivialGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).MustGraph(),
		graph.NewBuilder(4).MustGraph(),
		gen.Path(2),
	} {
		s, err := pref.Build(g, pref.MetricFunc(func(i, j graph.NodeID) float64 { return 0 }), pref.UniformQuota(1))
		if err != nil {
			t.Fatal(err)
		}
		m := LIC(s, satisfaction.NewTable(s))
		if err := m.Validate(s); err != nil {
			t.Fatal(err)
		}
		if g.NumEdges() == 1 && m.Size() != 1 {
			t.Fatal("single-edge graph should match its edge")
		}
	}
}

func TestLICStarTopChoices(t *testing.T) {
	// Star center with quota b and uniform leaf quotas: LIC must select
	// exactly the center's b heaviest edges; with equal leaf parameters
	// the weight order equals the center's preference order.
	g := gen.Star(8)
	lists := make([][]graph.NodeID, 8)
	lists[0] = []graph.NodeID{3, 5, 1, 7, 2, 4, 6} // center's preference order
	quotas := make([]int, 8)
	quotas[0] = 3
	for i := 1; i < 8; i++ {
		lists[i] = []graph.NodeID{0}
		quotas[i] = 1
	}
	s, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		t.Fatal(err)
	}
	m := LIC(s, satisfaction.NewTable(s))
	for _, want := range []graph.NodeID{3, 5, 1} {
		if !m.Has(0, want) {
			t.Fatalf("center should connect to %v; got %v", want, m.Edges())
		}
	}
	if m.Size() != 3 {
		t.Fatalf("size = %d, want 3", m.Size())
	}
}

func TestLICLiteralPoolDynamics(t *testing.T) {
	// Saturation must drop all of a node's remaining edges: on a path
	// 0-1-2 with quota 1 everywhere and weights making (0,1) heaviest,
	// the literal algorithm must end with exactly {(0,1)} if (1,2) is
	// dropped... node 2 stays free, so result = {(0,1)}.
	g := gen.Path(3)
	lists := [][]graph.NodeID{{1}, {0, 2}, {1}}
	s, err := pref.FromRanks(g, lists, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	m := LICLiteral(s, tbl, rng.New(0))
	if !m.Has(0, 1) || m.Has(1, 2) || m.Size() != 1 {
		t.Fatalf("literal result %v", m.Edges())
	}
}
