package matching

import (
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

// Baseline strategies for the comparison experiment (E7). None of them
// use the paper's machinery; they bracket LID from below (random,
// selfish) and characterize prior work (best-response dynamics, which
// converges only on acyclic systems — Gai et al. [3]).

// RandomMaximal selects edges in a uniformly random order, keeping each
// one that still fits both endpoint quotas. The result is a maximal
// b-matching with no preference awareness at all.
func RandomMaximal(s *pref.System, src *rng.Source) *Matching {
	g := s.Graph()
	edges := append([]graph.Edge(nil), g.Edges()...)
	src.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	cap_ := make([]int, g.NumNodes())
	for i := range cap_ {
		cap_[i] = s.Quota(i)
	}
	m := New(g.NumNodes())
	for _, e := range edges {
		if cap_[e.U] > 0 && cap_[e.V] > 0 {
			m.Add(e.U, e.V)
			cap_[e.U]--
			cap_[e.V]--
		}
	}
	return m
}

// SelfishTopB is the "no coordination" strategy: every node privately
// proposes to its top-bi preferred neighbors, and a connection forms
// exactly when both endpoints proposed to each other. Quotas are
// respected by construction; mutual interest is rare for scarce nodes,
// so many quota slots go unused — the coordination gap LID closes.
func SelfishTopB(s *pref.System) *Matching {
	g := s.Graph()
	n := g.NumNodes()
	proposes := make([]map[graph.NodeID]bool, n)
	for i := 0; i < n; i++ {
		proposes[i] = make(map[graph.NodeID]bool, s.Quota(i))
		list := s.List(i)
		for k := 0; k < s.Quota(i) && k < len(list); k++ {
			proposes[i][list[k]] = true
		}
	}
	m := New(n)
	for _, e := range g.Edges() {
		if proposes[e.U][e.V] && proposes[e.V][e.U] {
			m.Add(e.U, e.V)
		}
	}
	return m
}

// BestResponseResult reports the outcome of BestResponse.
type BestResponseResult struct {
	M           *Matching
	Converged   bool // true if no blocking pair remained
	Activations int  // number of blocking-pair activations performed
}

// BestResponse runs blocking-pair dynamics for the b-matching
// (stable fixtures) problem: while some non-selected edge (i,j) is a
// blocking pair — each endpoint either has free quota or prefers the
// other to its worst current connection — activate it: add the edge and
// drop the worst connection at any endpoint that exceeded its quota.
// Blocking pairs are scanned in a src-shuffled order each round.
//
// On acyclic preference systems these dynamics reach a stable
// configuration (Gai et al. [3]); on cyclic systems they may oscillate
// forever, which is exactly the phenomenon motivating the paper. The
// dynamics stop after maxActivations activations and report
// Converged=false if blocking pairs remain.
func BestResponse(s *pref.System, src *rng.Source, maxActivations int) BestResponseResult {
	g := s.Graph()
	m := New(g.NumNodes())
	edges := append([]graph.Edge(nil), g.Edges()...)
	activations := 0
	for activations < maxActivations {
		src.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		activated := false
		for _, e := range edges {
			if m.Has(e.U, e.V) {
				continue
			}
			if !wouldAccept(s, m, e.U, e.V) || !wouldAccept(s, m, e.V, e.U) {
				continue
			}
			// Activate the blocking pair.
			for _, x := range []graph.NodeID{e.U, e.V} {
				if m.DegreeOf(x) >= s.Quota(x) {
					m.Remove(x, worstConnection(s, m, x))
				}
			}
			m.Add(e.U, e.V)
			activations++
			activated = true
			if activations >= maxActivations {
				break
			}
		}
		if !activated {
			return BestResponseResult{M: m, Converged: true, Activations: activations}
		}
	}
	// One final scan to decide whether a blocking pair remains.
	for _, e := range g.Edges() {
		if !m.Has(e.U, e.V) && wouldAccept(s, m, e.U, e.V) && wouldAccept(s, m, e.V, e.U) {
			return BestResponseResult{M: m, Converged: false, Activations: activations}
		}
	}
	return BestResponseResult{M: m, Converged: true, Activations: activations}
}

// wouldAccept reports whether node i would accept a new connection to
// j: free quota, or j strictly preferred to i's worst current
// connection.
func wouldAccept(s *pref.System, m *Matching, i, j graph.NodeID) bool {
	if m.DegreeOf(i) < s.Quota(i) {
		return true
	}
	if s.Quota(i) == 0 {
		return false
	}
	return s.Rank(i, j) < s.Rank(i, worstConnection(s, m, i))
}

// worstConnection returns i's lowest-preference current connection. It
// panics if i has none.
func worstConnection(s *pref.System, m *Matching, i graph.NodeID) graph.NodeID {
	conns := m.Connections(i)
	if len(conns) == 0 {
		panic("matching: worstConnection of unmatched node")
	}
	worst := conns[0]
	for _, j := range conns[1:] {
		if s.Rank(i, j) > s.Rank(i, worst) {
			worst = j
		}
	}
	return worst
}
