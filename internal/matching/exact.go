package matching

import (
	"fmt"
	"sort"

	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// The exact solvers below are the OPT oracles of the experiment suite:
// Theorem 2 compares LIC against the optimal many-to-many maximum
// weighted matching, and Theorem 3 compares LID against the optimal
// maximizing-satisfaction b-matching. Both problems are solved by
// branch and bound over the edge list; this is exponential in the worst
// case and intended for the oracle sizes used in the experiments
// (tens of edges). MaxOracleEdges guards against accidental blowups.

// MaxOracleEdges is the largest edge count the exact solvers accept.
const MaxOracleEdges = 64

// MaxWeightBMatching returns an optimal solution of the many-to-many
// maximum weighted matching problem (edge weights of eq. 9, node
// capacities bi) together with its weight. It errors if the graph has
// more than MaxOracleEdges edges.
func MaxWeightBMatching(s *pref.System, tbl *satisfaction.Table) (*Matching, float64, error) {
	g := s.Graph()
	m := g.NumEdges()
	if m > MaxOracleEdges {
		return nil, 0, fmt.Errorf("matching: exact solver limited to %d edges, graph has %d", MaxOracleEdges, m)
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	weights := make([]float64, m)
	for i, e := range edges {
		weights[i] = satisfaction.EdgeWeight(s, e)
	}
	// Descending weight order makes the include-branch find strong
	// incumbents early.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return tbl.Key(edges[order[a]].U, edges[order[a]].V).
			Heavier(tbl.Key(edges[order[b]].U, edges[order[b]].V))
	})
	sortedEdges := make([]graph.Edge, m)
	sortedW := make([]float64, m)
	for i, idx := range order {
		sortedEdges[i] = edges[idx]
		sortedW[i] = weights[idx]
	}
	// suffix[k] = Σ sortedW[k:]; a cheap admissible bound.
	suffix := make([]float64, m+1)
	for k := m - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + sortedW[k]
	}

	cap_ := make([]int, g.NumNodes())
	for i := range cap_ {
		cap_[i] = s.Quota(i)
	}

	// Incumbent: LIC, which Theorem 2 guarantees within ½ of optimal.
	best := LIC(s, tbl)
	bestW := best.Weight(s)

	chosen := make([]bool, m)
	var rec func(k int, curW float64)
	rec = func(k int, curW float64) {
		if curW > bestW {
			bestW = curW
			b := New(g.NumNodes())
			for i, c := range chosen {
				if c {
					b.Add(sortedEdges[i].U, sortedEdges[i].V)
				}
			}
			best = b
		}
		if k == m {
			return
		}
		if curW+suffix[k] <= bestW+1e-15 {
			return // even taking everything left cannot beat the incumbent
		}
		if curW+capacityBound(sortedEdges[k:], sortedW[k:], cap_) <= bestW+1e-15 {
			return
		}
		e := sortedEdges[k]
		if cap_[e.U] > 0 && cap_[e.V] > 0 {
			cap_[e.U]--
			cap_[e.V]--
			chosen[k] = true
			rec(k+1, curW+sortedW[k])
			chosen[k] = false
			cap_[e.U]++
			cap_[e.V]++
		}
		rec(k+1, curW)
	}
	rec(0, 0)
	return best, bestW, nil
}

// capacityBound returns an admissible upper bound on the weight any
// feasible selection from the remaining edges can add: each selected
// edge contributes w/2 per endpoint, and node x can host at most
// cap_[x] more edges, so Σ over nodes of their top-cap incident
// remaining half-weights bounds the total. The remaining edges arrive
// in descending weight order, so a single pass with counters suffices.
func capacityBound(edges []graph.Edge, w []float64, cap_ []int) float64 {
	used := make(map[graph.NodeID]int, 2*len(edges))
	var bound float64
	for i, e := range edges {
		if cap_[e.U] == 0 || cap_[e.V] == 0 {
			continue
		}
		if used[e.U] < cap_[e.U] {
			used[e.U]++
			bound += w[i] / 2
		}
		if used[e.V] < cap_[e.V] {
			used[e.V]++
			bound += w[i] / 2
		}
	}
	return bound
}

// MaxSatisfactionBMatching returns an optimal solution of the
// maximizing-satisfaction b-matching problem — the paper's original
// objective, eq. 1 summed over all nodes — with its total satisfaction.
// It errors if the graph has more than MaxOracleEdges edges.
func MaxSatisfactionBMatching(s *pref.System) (*Matching, float64, error) {
	g := s.Graph()
	m := g.NumEdges()
	if m > MaxOracleEdges {
		return nil, 0, fmt.Errorf("matching: exact solver limited to %d edges, graph has %d", MaxOracleEdges, m)
	}
	edges := append([]graph.Edge(nil), g.Edges()...)
	// Heuristic order: descending eq.-9 weight, which correlates with
	// satisfaction contribution.
	sort.Slice(edges, func(a, b int) bool {
		return satisfaction.EdgeWeight(s, edges[a]) > satisfaction.EdgeWeight(s, edges[b])
	})

	n := g.NumNodes()
	cap_ := make([]int, n)
	for i := range cap_ {
		cap_[i] = s.Quota(i)
	}
	// incident[x] = indices (into edges) of x's incident edges, in scan order.
	incident := make([][]int, n)
	for idx, e := range edges {
		incident[e.U] = append(incident[e.U], idx)
		incident[e.V] = append(incident[e.V], idx)
	}

	// posOf[e] = position of edge e in the scan order, so the bound can
	// test "still undecided" in O(1).
	posOf := make(map[graph.Edge]int, m)
	for idx, e := range edges {
		posOf[e] = idx
	}

	cur := New(n)
	// Incumbent: start from the LIC matching (feasible and usually strong).
	tbl := satisfaction.NewTable(s)
	best := LIC(s, tbl)
	bestS := best.TotalSatisfaction(s)

	var rec func(k int)
	rec = func(k int) {
		curS := cur.TotalSatisfaction(s)
		if curS > bestS {
			bestS = curS
			best = cur.Clone()
		}
		if k == m {
			return
		}
		if upper := curS + satisfactionPotential(s, posOf, cur, cap_, k); upper <= bestS+1e-12 {
			return
		}
		e := edges[k]
		if cap_[e.U] > 0 && cap_[e.V] > 0 {
			cap_[e.U]--
			cap_[e.V]--
			cur.Add(e.U, e.V)
			rec(k + 1)
			cur.Remove(e.U, e.V)
			cap_[e.U]++
			cap_[e.V]++
		}
		rec(k + 1)
	}
	rec(0)
	return best, bestS, nil
}

// satisfactionPotential returns an admissible upper bound on the total
// satisfaction gain available from edges[k:]: for each node
// independently it evaluates eq. 1 for the best feasible completion
// (taking its a best-ranked still-available incident edges for every
// a up to its remaining capacity) and sums the per-node gains. Ignoring
// that an edge consumes capacity at both endpoints only loosens the
// bound, so it remains admissible.
func satisfactionPotential(s *pref.System, posOf map[graph.Edge]int, cur *Matching, cap_ []int, k int) float64 {
	g := s.Graph()
	var total float64
	for i := 0; i < g.NumNodes(); i++ {
		if cap_[i] == 0 {
			continue
		}
		li := float64(s.ListLen(i))
		bi := float64(s.Quota(i))
		ci := cur.DegreeOf(i)
		// Available ranks from the still-undecided incident edges.
		var ranks []int
		for _, nb := range g.Neighbors(i) {
			e := graph.Edge{U: i, V: nb}.Normalize()
			if posOf[e] >= k {
				ranks = append(ranks, s.Rank(i, nb))
			}
		}
		if len(ranks) == 0 {
			continue
		}
		sort.Ints(ranks)
		// Current rank sum.
		var rs float64
		for _, j := range cur.Connections(i) {
			rs += float64(s.Rank(i, j))
		}
		base := float64(ci)/bi + float64(ci)*float64(ci-1)/(2*bi*li) - rs/(bi*li)
		bestGain := 0.0
		addRS := 0.0
		maxA := min(cap_[i], len(ranks))
		for a := 1; a <= maxA; a++ {
			addRS += float64(ranks[a-1])
			c := float64(ci + a)
			val := c/bi + c*(c-1)/(2*bi*li) - (rs+addRS)/(bi*li)
			if gain := val - base; gain > bestGain {
				bestGain = gain
			}
		}
		total += bestGain
	}
	return total
}
