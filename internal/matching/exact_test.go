package matching

import (
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// bruteForce enumerates every subset of edges (m ≤ 20) and returns the
// best feasible value under the given objective.
func bruteForce(s *pref.System, objective func(*Matching) float64) float64 {
	g := s.Graph()
	edges := g.Edges()
	m := len(edges)
	if m > 20 {
		panic("bruteForce limited to 20 edges")
	}
	best := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		mm := New(g.NumNodes())
		feasible := true
		for k := 0; k < m && feasible; k++ {
			if mask&(1<<k) == 0 {
				continue
			}
			e := edges[k]
			if mm.DegreeOf(e.U) >= s.Quota(e.U) || mm.DegreeOf(e.V) >= s.Quota(e.V) {
				feasible = false
				break
			}
			mm.Add(e.U, e.V)
		}
		if !feasible {
			continue
		}
		if v := objective(mm); v > best {
			best = v
		}
	}
	return best
}

func smallSystem(tb testing.TB, seed uint64, n int, b int) *pref.System {
	tb.Helper()
	src := rng.New(seed)
	// Keep m ≤ 20 for brute force: n ≤ 8, p tuned low.
	g := gen.GNP(src, n, 0.45)
	for g.NumEdges() > 20 {
		src = rng.New(seed * 31)
		g = gen.GNP(src, n, 0.3)
		break
	}
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestMaxWeightMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		for _, b := range []int{1, 2, 3} {
			s := smallSystem(t, seed, 7, b)
			if s.Graph().NumEdges() > 20 {
				continue
			}
			tbl := satisfaction.NewTable(s)
			m, w, err := MaxWeightBMatching(s, tbl)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(s); err != nil {
				t.Fatalf("seed %d b %d: infeasible optimum: %v", seed, b, err)
			}
			if !almostEqual(w, m.Weight(s)) {
				t.Fatalf("seed %d b %d: reported weight %v != recomputed %v", seed, b, w, m.Weight(s))
			}
			want := bruteForce(s, func(mm *Matching) float64 { return mm.Weight(s) })
			if !almostEqual(w, want) {
				t.Fatalf("seed %d b %d: B&B weight %v, brute force %v", seed, b, w, want)
			}
		}
	}
}

func TestMaxSatisfactionMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, b := range []int{1, 2} {
			s := smallSystem(t, seed, 7, b)
			if s.Graph().NumEdges() > 20 {
				continue
			}
			m, v, err := MaxSatisfactionBMatching(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(s); err != nil {
				t.Fatalf("seed %d b %d: infeasible optimum: %v", seed, b, err)
			}
			if !almostEqual(v, m.TotalSatisfaction(s)) {
				t.Fatalf("seed %d b %d: reported %v != recomputed %v", seed, b, v, m.TotalSatisfaction(s))
			}
			want := bruteForce(s, func(mm *Matching) float64 { return mm.TotalSatisfaction(s) })
			if !almostEqual(v, want) {
				t.Fatalf("seed %d b %d: B&B satisfaction %v, brute force %v", seed, b, v, want)
			}
		}
	}
}

// TestTheorem2Ratio: LIC weight ≥ ½ · optimal weight, on every
// instance the oracle can certify.
func TestTheorem2Ratio(t *testing.T) {
	worst := 1.0
	for seed := uint64(0); seed < 60; seed++ {
		for _, b := range []int{1, 2, 3} {
			s := randomSystem(t, seed, 10, 0.4, b)
			if s.Graph().NumEdges() > 28 {
				continue
			}
			tbl := satisfaction.NewTable(s)
			lic := LIC(s, tbl).Weight(s)
			_, opt, err := MaxWeightBMatching(s, tbl)
			if err != nil {
				t.Fatal(err)
			}
			if opt == 0 {
				continue
			}
			ratio := lic / opt
			if ratio < 0.5-1e-9 {
				t.Fatalf("seed %d b %d: LIC/OPT = %v < 1/2", seed, b, ratio)
			}
			if ratio < worst {
				worst = ratio
			}
		}
	}
	t.Logf("worst observed LIC/OPT weight ratio: %.4f", worst)
}

// TestTheorem3Ratio: LIC (≡ LID) total satisfaction ≥ ¼(1+1/bmax) ·
// optimal total satisfaction.
func TestTheorem3Ratio(t *testing.T) {
	worst := 1.0
	for seed := uint64(0); seed < 40; seed++ {
		for _, b := range []int{1, 2, 3} {
			s := randomSystem(t, seed, 9, 0.4, b)
			if s.Graph().NumEdges() > 22 {
				continue
			}
			tbl := satisfaction.NewTable(s)
			licSat := LIC(s, tbl).TotalSatisfaction(s)
			_, opt, err := MaxSatisfactionBMatching(s)
			if err != nil {
				t.Fatal(err)
			}
			if opt == 0 {
				continue
			}
			bound := satisfaction.Theorem3Bound(s.MaxQuota())
			ratio := licSat / opt
			if ratio < bound-1e-9 {
				t.Fatalf("seed %d b %d: satisfaction ratio %v < bound %v", seed, b, ratio, bound)
			}
			if ratio < worst {
				worst = ratio
			}
		}
	}
	t.Logf("worst observed satisfaction ratio: %.4f", worst)
}

// TestLemma2Equivalence: the weight-optimal matching is also optimal
// for the modified satisfaction objective, and the two optimal values
// coincide (lemma 2's two directions).
func TestLemma2Equivalence(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		s := smallSystem(t, seed, 7, 2)
		if s.Graph().NumEdges() > 18 {
			continue
		}
		tbl := satisfaction.NewTable(s)
		_, wOpt, err := MaxWeightBMatching(s, tbl)
		if err != nil {
			t.Fatal(err)
		}
		modOpt := bruteForce(s, func(mm *Matching) float64 { return mm.TotalModifiedSatisfaction(s) })
		if !almostEqual(wOpt, modOpt) {
			t.Fatalf("seed %d: weight optimum %v != modified satisfaction optimum %v", seed, wOpt, modOpt)
		}
	}
}

// TestLemma1Ratio: the satisfaction of the modified-objective optimum
// is at least ½(1+1/bmax) of the true satisfaction optimum.
func TestLemma1Ratio(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, b := range []int{1, 2, 3} {
			s := smallSystem(t, seed, 7, b)
			if s.Graph().NumEdges() > 18 {
				continue
			}
			tbl := satisfaction.NewTable(s)
			modM, _, err := MaxWeightBMatching(s, tbl) // = modified optimum (Lemma 2)
			if err != nil {
				t.Fatal(err)
			}
			_, satOpt, err := MaxSatisfactionBMatching(s)
			if err != nil {
				t.Fatal(err)
			}
			if satOpt == 0 {
				continue
			}
			ratio := modM.TotalSatisfaction(s) / satOpt
			if bound := satisfaction.Lemma1Bound(s.MaxQuota()); ratio < bound-1e-9 {
				t.Fatalf("seed %d b %d: Lemma1 ratio %v < bound %v", seed, b, ratio, bound)
			}
		}
	}
}

func TestOracleRejectsHugeGraphs(t *testing.T) {
	s := randomSystem(t, 1, 40, 0.5, 2)
	if s.Graph().NumEdges() <= MaxOracleEdges {
		t.Skip("graph unexpectedly small")
	}
	tbl := satisfaction.NewTable(s)
	if _, _, err := MaxWeightBMatching(s, tbl); err == nil {
		t.Fatal("weight oracle accepted a huge graph")
	}
	if _, _, err := MaxSatisfactionBMatching(s); err == nil {
		t.Fatal("satisfaction oracle accepted a huge graph")
	}
}

func TestOracleEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(3).MustGraph()
	s, err := pref.Build(g, pref.MetricFunc(func(i, j graph.NodeID) float64 { return 0 }), pref.UniformQuota(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl := satisfaction.NewTable(s)
	if _, w, err := MaxWeightBMatching(s, tbl); err != nil || w != 0 {
		t.Fatalf("empty graph weight oracle: %v, %v", w, err)
	}
	if _, v, err := MaxSatisfactionBMatching(s); err != nil || v != 0 {
		t.Fatalf("empty graph satisfaction oracle: %v, %v", v, err)
	}
}
