package matching

import (
	"fmt"
	"sort"
	"testing"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
)

// This file is the equivalence guard for the dense CSR core: every
// algorithm that now runs over EdgeIDs, bitsets, and flat position
// tables is replayed here against a straightforward map-based
// reference reconstructed purely from the public API — the shape the
// code had before the refactor. Divergence anywhere (edge sets, quota
// use, weights, table keys) fails the test with the offending system's
// construction parameters.

// refLIC is the pre-refactor sorted-scan LIC: WeightKey structs sorted
// by Heavier, greedy selection into a sparse matching, membership via
// the per-node connection lists only.
func refLIC(s *pref.System) *Matching {
	g := s.Graph()
	keys := make([]satisfaction.WeightKey, 0, g.NumEdges())
	for _, e := range g.Edges() {
		keys = append(keys, satisfaction.KeyFor(s, e))
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].Heavier(keys[b]) })
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := New(g.NumNodes())
	for _, k := range keys {
		if counter[k.U] > 0 && counter[k.V] > 0 {
			m.Add(k.U, k.V)
			counter[k.U]--
			counter[k.V]--
		}
	}
	return m
}

// refLICLiteral is the pre-refactor literal Algorithm 2: the pool is a
// map keyed by normalized edge, and every iteration rescans it for the
// locally heaviest edges (candidates collected in canonical
// lexicographic order, so rng consumption matches LICLiteral's
// ascending-EdgeID bitset walk draw for draw).
func refLICLiteral(s *pref.System, src *rng.Source) *Matching {
	g := s.Graph()
	pool := make(map[graph.Edge]bool, g.NumEdges())
	for _, e := range g.Edges() {
		pool[e] = true
	}
	heaviestFor := func(x graph.NodeID) (best satisfaction.WeightKey, ok bool) {
		for _, v := range g.Neighbors(x) {
			e := graph.Edge{U: x, V: v}.Normalize()
			if !pool[e] {
				continue
			}
			k := satisfaction.KeyFor(s, e)
			if !ok || k.Heavier(best) {
				best, ok = k, true
			}
		}
		return best, ok
	}
	counter := make([]int, g.NumNodes())
	for i := range counter {
		counter[i] = s.Quota(i)
	}
	m := New(g.NumNodes())
	for len(pool) > 0 {
		var cands []graph.Edge
		for _, e := range g.Edges() { // canonical order
			if !pool[e] {
				continue
			}
			k := satisfaction.KeyFor(s, e)
			bu, _ := heaviestFor(e.U)
			bv, _ := heaviestFor(e.V)
			if bu == k && bv == k {
				cands = append(cands, e)
			}
		}
		e := cands[src.Intn(len(cands))]
		m.Add(e.U, e.V)
		counter[e.U]--
		counter[e.V]--
		delete(pool, e)
		for _, x := range [2]graph.NodeID{e.U, e.V} {
			if counter[x] == 0 {
				for _, v := range g.Neighbors(x) {
					delete(pool, graph.Edge{U: x, V: v}.Normalize())
				}
			}
		}
	}
	return m
}

// equivSystems enumerates the guard corpus: three generator families ×
// quotas 1..4 × a spread of seeds — 216 systems in total.
func equivSystems(tb testing.TB) []*pref.System {
	tb.Helper()
	var out []*pref.System
	build := func(g *graph.Graph, src *rng.Source, b int) {
		s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(b))
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, s)
	}
	for b := 1; b <= 4; b++ {
		for seed := uint64(0); seed < 51; seed++ {
			src := rng.New(seed*31 + uint64(b))
			n := 8 + int(seed%12)*2
			switch seed % 3 {
			case 0:
				build(gen.GNP(src, n, 0.4), src, b)
			case 1:
				g, _ := gen.Geometric(src, n, 0.5)
				build(g, src, b)
			default:
				build(gen.BarabasiAlbert(src, n, 2), src, b)
			}
		}
	}
	return out
}

func TestDenseCoreEquivalence(t *testing.T) {
	systems := equivSystems(t)
	if len(systems) < 200 {
		t.Fatalf("guard corpus too small: %d systems", len(systems))
	}
	for si, s := range systems {
		si, s := si, s
		t.Run(fmt.Sprintf("sys%03d", si), func(t *testing.T) {
			g := s.Graph()
			tbl := satisfaction.NewTable(s)
			// Table keys must equal an independent per-edge recompute.
			for _, e := range g.Edges() {
				if got, want := tbl.Key(e.U, e.V), satisfaction.KeyFor(s, e); got != want {
					t.Fatalf("Key(%v) = %+v, want %+v", e, got, want)
				}
			}
			// Dense sorted-scan LIC vs map-based reference.
			dense := LIC(s, tbl)
			ref := refLIC(s)
			if !dense.Equal(ref) {
				t.Fatalf("LIC diverged: dense %v, ref %v", dense.Edges(), ref.Edges())
			}
			if dw, rw := dense.Weight(s), ref.Weight(s); dw != rw {
				t.Fatalf("LIC weight diverged: %v vs %v", dw, rw)
			}
			// Incremental literal vs rescanning literal, same rng seed —
			// the candidate orders must agree draw for draw.
			seed := uint64(si)*7 + 1
			lit := LICLiteral(s, tbl, rng.New(seed))
			refLit := refLICLiteral(s, rng.New(seed))
			if !lit.Equal(refLit) {
				t.Fatalf("LICLiteral diverged: dense %v, ref %v", lit.Edges(), refLit.Edges())
			}
			if !lit.Equal(dense) {
				t.Fatalf("Lemma 6 violated: literal %v, LIC %v", lit.Edges(), dense.Edges())
			}
		})
	}
}

// TestMatchingAllocBudget pins the per-operation allocation counts the
// dense representations were built for: adding to a dense matching
// allocates only for connection-slice growth (amortized ≤ 2 slices per
// Add), and building the weight table allocates nothing per edge
// beyond its two flat arrays.
func TestMatchingAllocBudget(t *testing.T) {
	s := randomSystem(t, 99, 60, 0.4, 2)
	g := s.Graph()
	edges := g.Edges()
	if avg := testing.AllocsPerRun(50, func() {
		m := NewDense(g)
		for _, e := range edges {
			m.Add(e.U, e.V)
		}
	}); avg > float64(2+2*len(edges)) {
		t.Fatalf("dense Add loop allocates %v per run for %d edges", avg, len(edges))
	}
	if avg := testing.AllocsPerRun(20, func() {
		satisfaction.NewTable(s)
	}); avg > 4 {
		t.Fatalf("NewTable allocates %v per run, want ≤ 4", avg)
	}
}
