package workload

import (
	"fmt"
	"math"
	"sort"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

// Instance is one built scenario: the preference system the matching
// algorithms run on, plus the family-specific context the generators
// produced along the way.
type Instance struct {
	// Spec is the fully resolved spec (Spec.Resolved of the input).
	Spec Spec
	// System is the preference system of the final state — for drift,
	// the last epoch's ranking.
	System *pref.System
	// Epochs holds one preference system per drift epoch over the same
	// contact graph (Epochs[len-1] == System); nil for other families.
	Epochs []*pref.System
	// Coords are the final node positions of the geo family; nil
	// otherwise.
	Coords [][2]float64
	// Communities maps node -> community for the drift family; nil
	// otherwise.
	Communities []int
	// SuperNodes lists the supernode IDs of the hetero family in
	// ascending order; nil otherwise.
	SuperNodes []graph.NodeID
}

// Build constructs the instance a spec describes. It is deterministic
// given (spec, seed) and bit-identical for any workers value: all
// randomness comes from rng streams derived from seed, and workers
// only parallelizes the preference build (pref.BuildParallel with
// concurrency-safe value metrics).
func Build(spec Spec, seed uint64, workers int) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := spec.Resolved()
	src := rng.New(seed ^ 0x90a7_1ca5_ce4a_71e5)
	var (
		inst *Instance
		err  error
	)
	switch r.Family {
	case "swarm":
		inst, err = buildSwarm(r, src, workers)
	case "geo":
		inst, err = buildGeo(r, src, workers)
	case "drift":
		inst, err = buildDrift(r, src, workers)
	case "hetero":
		inst, err = buildHetero(r, src, workers)
	case "master":
		inst, err = buildMaster(r, src, workers)
	case "antilocal":
		inst, err = buildAntilocal(r, workers)
	default:
		return nil, fmt.Errorf("workload: unknown family %q", r.Family)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: build %s: %w", r, err)
	}
	inst.Spec = r
	return inst, nil
}

// pairNoise is a pure per-ordered-pair jitter in [0, scale): a
// splitmix64 finalizer over (salt, i, j). It keeps value metrics
// strict total orders without the memoizing (non-concurrency-safe)
// random metrics.
func pairNoise(salt uint64, scale float64) func(i, j graph.NodeID) float64 {
	return func(i, j graph.NodeID) float64 {
		z := salt ^ (uint64(i) << 32) ^ uint64(uint32(j))
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return scale * float64(z>>11) / (1 << 53)
	}
}

// buildSwarm: nodes join Zipf-popular swarms; each swarm wires its
// members into a ring plus random chords. Preferences reward
// shared-swarm overlap, then capacity, with a private noise
// tie-breaker.
func buildSwarm(r Spec, src *rng.Source, workers int) (*Instance, error) {
	n := r.N
	joins := min(r.Joins, r.Swarms)
	// Zipf popularity over swarms: weight(s) ∝ (s+1)^-zipf.
	weights := make([]float64, r.Swarms)
	for s := range weights {
		weights[s] = math.Pow(float64(s+1), -r.Zipf)
	}
	membership := make([][]int, n) // node -> sorted swarm IDs
	members := make([][]int, r.Swarms)
	memberSrc := src.Split()
	for i := 0; i < n; i++ {
		joined := make([]int, 0, joins)
		for len(joined) < joins {
			s := memberSrc.WeightedIndex(weights)
			dup := false
			for _, t := range joined {
				if t == s {
					dup = true
					break
				}
			}
			if dup {
				// Deterministic fallback: walk to the next unjoined swarm
				// instead of resampling forever on tiny swarm counts.
				for dup {
					s = (s + 1) % r.Swarms
					dup = false
					for _, t := range joined {
						if t == s {
							dup = true
							break
						}
					}
				}
			}
			joined = append(joined, s)
			members[s] = append(members[s], i)
		}
		sort.Ints(joined)
		membership[i] = joined
	}
	b := graph.NewBuilder(n)
	chordSrc := src.Split()
	for _, m := range members {
		// Ring over the join order, then chords.
		for k := range m {
			if len(m) < 2 {
				break
			}
			b.TryAddEdge(m[k], m[(k+1)%len(m)])
		}
		for _, u := range m {
			for c := 0; c < r.Peers; c++ {
				b.TryAddEdge(u, m[chordSrc.Intn(len(m))])
			}
		}
	}
	g := b.MustGraph()
	capacity := make([]float64, n)
	capSrc := src.Split()
	for i := range capacity {
		capacity[i] = capSrc.Float64()
	}
	noise := pairNoise(src.Uint64(), 1e-3)
	shared := func(i, j graph.NodeID) float64 {
		a, b := membership[i], membership[j]
		count := 0
		for x, y := 0, 0; x < len(a) && y < len(b); {
			switch {
			case a[x] == b[y]:
				count++
				x++
				y++
			case a[x] < b[y]:
				x++
			default:
				y++
			}
		}
		return float64(count)
	}
	metric := pref.MetricFunc(func(i, j graph.NodeID) float64 {
		return 2*shared(i, j) + capacity[j] + noise(i, j)
	})
	sys, err := pref.BuildParallel(g, metric, pref.UniformQuota(r.B), workers)
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys}, nil
}

// buildGeo: a reflected Gaussian random walk moves every node for
// Steps steps; the contact graph is the union of the geometric graphs
// of every snapshot (a link once in range stays known). Preferences
// are distance at the final positions.
func buildGeo(r Spec, src *rng.Source, workers int) (*Instance, error) {
	n := r.N
	pts := make([][2]float64, n)
	posSrc := src.Split()
	for i := range pts {
		pts[i] = [2]float64{posSrc.Float64(), posSrc.Float64()}
	}
	b := graph.NewBuilder(n)
	moveSrc := src.Split()
	for step := 0; step <= r.Steps; step++ {
		addGeometricEdges(b, pts, r.Radius)
		if step == r.Steps {
			break
		}
		for i := range pts {
			pts[i][0] = reflect01(pts[i][0] + r.Sigma*moveSrc.NormFloat64())
			pts[i][1] = reflect01(pts[i][1] + r.Sigma*moveSrc.NormFloat64())
		}
	}
	g := b.MustGraph()
	sys, err := pref.BuildParallel(g, pref.DistanceMetric{Coords: pts}, pref.UniformQuota(r.B), workers)
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys, Coords: pts}, nil
}

// addGeometricEdges unions the radius graph of one snapshot into b,
// grid-bucketed like gen.Geometric so a mobility trace stays near
// linear.
func addGeometricEdges(b *graph.Builder, pts [][2]float64, radius float64) {
	cell := radius
	if cell <= 0 || cell > 1 {
		cell = 1
	}
	r2 := radius * radius
	buckets := make(map[[2]int][]int)
	key := func(p [2]float64) [2]int {
		return [2]int{int(p[0] / cell), int(p[1] / cell)}
	}
	for i, p := range pts {
		buckets[key(p)] = append(buckets[key(p)], i)
	}
	for i, p := range pts {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{k[0] + dx, k[1] + dy}] {
					if j <= i {
						continue
					}
					ddx := p[0] - pts[j][0]
					ddy := p[1] - pts[j][1]
					if ddx*ddx+ddy*ddy <= r2 {
						b.TryAddEdge(i, j)
					}
				}
			}
		}
	}
}

// reflect01 folds x back into [0,1] by reflection at the borders.
func reflect01(x float64) float64 {
	for x < 0 || x > 1 {
		if x < 0 {
			x = -x
		}
		if x > 1 {
			x = 2 - x
		}
	}
	return x
}

// buildDrift: an SBM community graph whose interest vectors drift
// epoch by epoch; each epoch re-ranks the same contact graph, so
// Epochs[e] and Epochs[e+1] differ only in preference order.
func buildDrift(r Spec, src *rng.Source, workers int) (*Instance, error) {
	n, comms := r.N, min(r.Comms, max(r.N, 1))
	sizes := make([]int, comms)
	for c := range sizes {
		sizes[c] = n / comms
		if c < n%comms {
			sizes[c]++
		}
	}
	csize := float64(n) / float64(comms)
	pIn := clamp01(6 / math.Max(csize-1, 1))
	pOut := clamp01(2 / math.Max(float64(n)-csize, 1))
	g, community := gen.SBM(src.Split(), sizes, pIn, pOut)

	base := make([][]float64, comms)
	vecSrc := src.Split()
	for c := range base {
		base[c] = make([]float64, r.Dims)
		for d := range base[c] {
			base[c][d] = vecSrc.NormFloat64()
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, r.Dims)
		for d := range vecs[i] {
			vecs[i][d] = base[community[i]][d] + 0.3*vecSrc.NormFloat64()
		}
	}
	driftSrc := src.Split()
	epochs := make([]*pref.System, 0, r.Epochs)
	for e := 0; e < r.Epochs; e++ {
		if e > 0 {
			for i := range vecs {
				next := make([]float64, r.Dims)
				for d := range next {
					next[d] = vecs[i][d] + r.DriftSigma*driftSrc.NormFloat64()
				}
				vecs[i] = next
			}
		}
		// Each epoch snapshots its own vectors; InterestMetric reads the
		// snapshot, so finished epochs stay valid as later ones drift.
		snap := make([][]float64, n)
		for i := range snap {
			snap[i] = append([]float64(nil), vecs[i]...)
		}
		sys, err := pref.BuildParallel(g, pref.InterestMetric{Interests: snap}, pref.UniformQuota(r.B), workers)
		if err != nil {
			return nil, err
		}
		epochs = append(epochs, sys)
	}
	return &Instance{System: epochs[len(epochs)-1], Epochs: epochs, Communities: community}, nil
}

func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// buildHetero: preferential attachment concentrates degree on early
// nodes; the top SuperFrac by degree become supernodes with the
// SuperB quota, everyone else keeps the leaf quota B. Preferences
// follow degree-correlated capacity.
func buildHetero(r Spec, src *rng.Source, workers int) (*Instance, error) {
	n := r.N
	m := min(4, max(n-1, 1))
	var g *graph.Graph
	if n < 2 {
		g = graph.NewBuilder(n).MustGraph()
	} else {
		g = gen.BarabasiAlbert(src.Split(), n, m)
	}
	superCount := max(1, int(r.SuperFrac*float64(n)))
	if superCount > n {
		superCount = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if g.Degree(order[a]) != g.Degree(order[b]) {
			return g.Degree(order[a]) > g.Degree(order[b])
		}
		return order[a] < order[b]
	})
	super := make([]bool, n)
	supers := append([]graph.NodeID(nil), order[:superCount]...)
	sort.Ints(supers)
	for _, u := range supers {
		super[u] = true
	}
	capacity := make([]float64, n)
	capSrc := src.Split()
	for i := range capacity {
		capacity[i] = float64(g.Degree(i)) + capSrc.Float64()
	}
	quota := func(i graph.NodeID) int {
		if super[i] {
			return r.SuperB
		}
		return r.B
	}
	sys, err := pref.BuildParallel(g, pref.ResourceMetric{Capacity: capacity}, quota, workers)
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys, SuperNodes: supers}, nil
}

// buildMaster: a GNP contact graph ranked by one global master list —
// except for a colluding clique whose members boost each other above
// every honest node, the masterlist-manipulation adversary.
func buildMaster(r Spec, src *rng.Source, workers int) (*Instance, error) {
	n := r.N
	p := clamp01(8 / math.Max(float64(n-1), 1))
	g := gen.GNP(src.Split(), n, p)
	score := make([]float64, n)
	scoreSrc := src.Split()
	for i := range score {
		score[i] = scoreSrc.Float64()
	}
	clique := make([]bool, n)
	for _, i := range src.Split().Sample(n, int(r.Clique*float64(n))) {
		clique[i] = true
	}
	metric := pref.MetricFunc(func(i, j graph.NodeID) float64 {
		s := score[j]
		if clique[i] && clique[j] {
			s += 2 // colluders outrank every honest master-list score
		}
		return s
	})
	sys, err := pref.BuildParallel(g, metric, pref.UniformQuota(r.B), workers)
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys}, nil
}

// buildAntilocal: disjoint 4-node path gadgets a-b-c-d with quota 1
// where both interior nodes prefer each other: under eq. 9 the middle
// edge weighs 2 against the outer 1.5, so the locally-heaviest
// matching takes only {b,c} while the optimum takes both outer edges —
// weight ratio 2/3, satisfaction share ½(1+1/b); the Lemma 1 tightness
// shape chained n/4 times. The remainder nodes (n mod 4) form one
// shorter path with the same center-first orientation.
func buildAntilocal(r Spec, workers int) (*Instance, error) {
	n := r.N
	b := graph.NewBuilder(n)
	lists := make([][]graph.NodeID, n)
	quotas := make([]int, n)
	addPath := func(lo, hi int) { // nodes lo..hi inclusive
		ln := hi - lo + 1
		for u := lo; u < hi; u++ {
			b.AddEdge(u, u+1)
		}
		for u := lo; u <= hi; u++ {
			quotas[u] = 1
			switch {
			case ln == 1:
				quotas[u] = 0
			case u == lo:
				lists[u] = []graph.NodeID{u + 1}
			case u == hi:
				lists[u] = []graph.NodeID{u - 1}
			default:
				// Interior nodes prefer the neighbor toward the center, so
				// central edges are locally heaviest.
				center := float64(lo+hi) / 2
				if float64(u) < center {
					lists[u] = []graph.NodeID{u + 1, u - 1}
				} else {
					lists[u] = []graph.NodeID{u - 1, u + 1}
				}
			}
		}
	}
	full := n / 4
	for k := 0; k < full; k++ {
		addPath(4*k, 4*k+3)
	}
	if rem := n % 4; rem > 0 {
		addPath(4*full, n-1)
	}
	g := b.MustGraph()
	_ = workers // list construction is explicit; nothing to parallelize
	sys, err := pref.FromRanks(g, lists, quotas)
	if err != nil {
		return nil, err
	}
	return &Instance{System: sys}, nil
}
