package workload

import (
	"fmt"
	"strings"
	"testing"

	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/satisfaction"
)

// testSuite is the per-family spec grid the property tests sweep:
// defaults at a small n plus one parameter-heavy variant each.
func testSuite(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, fam := range Families() {
		specs = append(specs, Spec{Family: fam, N: 48})
	}
	for _, in := range []string{
		"swarm:n=48,b=2,swarms=6,joins=3,peers=2,zipf=0.7",
		"geo:n=48,steps=2,sigma=0.15,radius=0.35",
		"drift:n=48,b=2,epochs=3,dsigma=0.5,dims=4,comms=3",
		"hetero:n=48,superfrac=0.15,superb=6",
		"master:n=48,clique=0.4",
		"antilocal:n=47", // remainder path exercises the n mod 4 tail
	} {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		specs = append(specs, s)
	}
	return specs
}

// fingerprint renders a System bit-exactly: every preference list,
// rank and quota. Two systems with equal fingerprints rank and admit
// identically.
func fingerprint(s *pref.System) string {
	var b strings.Builder
	g := s.Graph()
	fmt.Fprintf(&b, "n=%d m=%d\n", g.NumNodes(), g.NumEdges())
	for i := 0; i < g.NumNodes(); i++ {
		fmt.Fprintf(&b, "%d q=%d l=%v\n", i, s.Quota(i), s.List(i))
	}
	return b.String()
}

func instanceFingerprint(inst *Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec=%s\n", inst.Spec)
	b.WriteString(fingerprint(inst.System))
	for e, sys := range inst.Epochs {
		fmt.Fprintf(&b, "epoch %d\n%s", e, fingerprint(sys))
	}
	fmt.Fprintf(&b, "coords=%v communities=%v supers=%v\n", inst.Coords, inst.Communities, inst.SuperNodes)
	return b.String()
}

// TestBuildValidity: every generated graph is a simple graph (the
// Builder enforces no self-loops/duplicates; re-verified here from the
// CSR view) and every preference system satisfies the §2 model
// invariants (totality, strictness, quota bounds).
func TestBuildValidity(t *testing.T) {
	for _, spec := range testSuite(t) {
		inst, err := Build(spec, 7, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		g := inst.System.Graph()
		if g.NumNodes() != inst.Spec.N {
			t.Fatalf("%s: built %d nodes, want %d", spec, g.NumNodes(), inst.Spec.N)
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges() {
			if e.U == e.V {
				t.Fatalf("%s: self loop at %d", spec, e.U)
			}
			if e.U > e.V {
				t.Fatalf("%s: non-canonical edge %v", spec, e)
			}
			k := [2]int{e.U, e.V}
			if seen[k] {
				t.Fatalf("%s: duplicate edge %v", spec, e)
			}
			seen[k] = true
		}
		systems := inst.Epochs
		if systems == nil {
			systems = []*pref.System{inst.System}
		}
		for e, sys := range systems {
			if err := sys.Validate(); err != nil {
				t.Fatalf("%s epoch %d: %v", spec, e, err)
			}
			if sys.Graph() != g {
				t.Fatalf("%s epoch %d: epochs must share one contact graph", spec, e)
			}
		}
	}
}

// TestBuildWorkerDeterminism: the workers knob may only change the
// schedule, never the instance — bit-identical output for workers
// 1, 2 and 8 (the satellite's required sweep).
func TestBuildWorkerDeterminism(t *testing.T) {
	for _, spec := range testSuite(t) {
		var base string
		for _, workers := range []int{1, 2, 8} {
			inst, err := Build(spec, 99, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", spec, workers, err)
			}
			fp := instanceFingerprint(inst)
			if workers == 1 {
				base = fp
			} else if fp != base {
				t.Fatalf("%s: instance differs between workers=1 and workers=%d", spec, workers)
			}
		}
	}
}

// TestBuildSeedReplay: one seed, one instance — and distinct seeds
// must not collide (on the randomized families).
func TestBuildSeedReplay(t *testing.T) {
	for _, spec := range testSuite(t) {
		a, err := Build(spec, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := Build(spec, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if instanceFingerprint(a) != instanceFingerprint(b) {
			t.Fatalf("%s: same seed built different instances", spec)
		}
		if spec.Family == "antilocal" {
			continue // fully deterministic by design: seeds cannot differ
		}
		c, err := Build(spec, 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if instanceFingerprint(a) == instanceFingerprint(c) {
			t.Fatalf("%s: seeds 3 and 4 built identical instances", spec)
		}
	}
}

// TestDriftEpochsConsistent: drift re-ranks but never rewires — every
// epoch is a total strict ranking of the same neighborhoods, drift
// actually changes some ranking across the run, and Instance.System is
// the final epoch.
func TestDriftEpochsConsistent(t *testing.T) {
	spec, err := Parse("drift:n=64,epochs=4,dsigma=0.6,dims=4")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(spec, 11, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Epochs) != 4 {
		t.Fatalf("built %d epochs, want 4", len(inst.Epochs))
	}
	if inst.Epochs[len(inst.Epochs)-1] != inst.System {
		t.Fatal("Instance.System must be the final epoch")
	}
	if len(inst.Communities) != 64 {
		t.Fatalf("communities sized %d, want 64", len(inst.Communities))
	}
	changed := false
	for e, sys := range inst.Epochs {
		if err := sys.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
		if e > 0 && fingerprint(sys) != fingerprint(inst.Epochs[e-1]) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("dsigma=0.6 drift never changed any ranking across 4 epochs")
	}
}

// TestHeteroQuotas: supernodes carry the superb quota (clamped by
// degree), leaves the leaf quota.
func TestHeteroQuotas(t *testing.T) {
	spec, err := Parse("hetero:n=96,b=2,superfrac=0.1,superb=7")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 9; len(inst.SuperNodes) != want { // int(0.1*96) = 9
		t.Fatalf("%d supernodes, want %d", len(inst.SuperNodes), want)
	}
	super := map[int]bool{}
	for _, u := range inst.SuperNodes {
		super[u] = true
	}
	g := inst.System.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		want := 2
		if super[i] {
			want = 7
		}
		if d := g.Degree(i); d < want {
			want = d // pref clamps quotas to the degree
		}
		if q := inst.System.Quota(i); q != want {
			t.Fatalf("node %d (super=%v, deg=%d): quota %d, want %d", i, super[i], g.Degree(i), q, want)
		}
	}
}

// TestAntilocalGadgetRatio: the adversarial gadget must realize the
// Lemma 1 / Theorem 2 tightness shape — LIC matches only the middle
// edge of each 4-path (weight 2) while the optimum takes both outer
// edges (weight 3).
func TestAntilocalGadgetRatio(t *testing.T) {
	spec := Spec{Family: "antilocal", N: 40} // 10 gadgets
	inst, err := Build(spec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := inst.System
	tbl := satisfaction.NewTable(sys)
	lic := matching.LIC(sys, tbl)
	if got, want := lic.Weight(sys), 2.0*10; got != want {
		t.Fatalf("LIC weight %v, want %v (middle edges only)", got, want)
	}
	if got, want := lic.Size(), 10; got != want {
		t.Fatalf("LIC size %d, want %d", got, want)
	}
	// The optimum — both outer edges per gadget — weighs 3 per gadget.
	opt := matching.New(sys.Graph().NumNodes())
	for k := 0; k < 10; k++ {
		opt.Add(4*k, 4*k+1)
		opt.Add(4*k+2, 4*k+3)
	}
	if got, want := opt.Weight(sys), 3.0*10; got != want {
		t.Fatalf("handcrafted optimum weighs %v, want %v", got, want)
	}
}
