// Package workload is the production-shaped scenario suite: seeded,
// replayable generators for the overlay populations the paper's
// introduction motivates but the synthetic E-registry topologies only
// approximate. Each scenario is described by a Spec — a family name
// plus typed parameters — with a canonical flag-friendly string form
// ("swarm:n=512,zipf=1.4") that round-trips through Parse/String the
// way faults.Spec does, so a tournament cell, a CLI invocation and a
// replay file all name the same instance the same way.
//
// Families:
//
//	swarm     trace-driven content swarms: nodes join Zipf-popular
//	          swarms, per-swarm rings plus random chords; preferences
//	          mix shared-swarm overlap, capacity and private noise.
//	geo       geographic overlay with a mobility step: the contact
//	          graph is the union of geometric graphs along a reflected
//	          random walk; preferences are distance at the final
//	          positions.
//	drift     interest communities whose vectors drift over epochs: an
//	          SBM contact graph with cosine-similarity preferences,
//	          re-ranked once per epoch (Instance.Epochs).
//	hetero    supernode/leaf capacity split: preferential-attachment
//	          graph, top-degree fraction gets the supernode quota,
//	          preferences follow degree-correlated capacity.
//	master    adversarial master-list collusion: one global score list
//	          plus a colluding clique that ranks fellow members above
//	          every honest node.
//	antilocal adversarial anti-locally-heaviest gadget chains: disjoint
//	          paths whose middle edge is locally heaviest, the Lemma 1 /
//	          Theorem 2 tightness shape (LIC weight = 2/3·OPT), quota 1.
//
// Every generator is deterministic given (Spec, seed) and bit-identical
// for any worker count: randomness is drawn from rng streams derived
// only from the seed, and the parallel preference build only ever uses
// concurrency-safe value metrics (precomputed arrays), never the
// memoizing random metrics.
package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec names one scenario: a family plus its parameters. The zero
// value of every parameter means "use the family default" (resolved at
// Build time via Resolved), so a bare family name is a valid spec and
// String omits defaulted fields.
type Spec struct {
	// Family is one of Families().
	Family string
	// N is the node count (key "n"; default 256).
	N int
	// B is the connection quota (key "b"; default 3; hetero leaves
	// default 2; antilocal forces 1).
	B int

	// Swarms, Joins, Peers and Zipf parameterize the swarm family:
	// number of swarms (default max(4, n/16)), swarms joined per node
	// (default 2), random chords added per member per swarm (default
	// 4), and the Zipf popularity exponent (default 1.2).
	Swarms int
	Joins  int
	Peers  int
	Zipf   float64

	// Steps, Sigma and Radius parameterize the geo family: mobility
	// steps (default 4), per-step Gaussian displacement (default 0.05)
	// and the contact radius (default 1.6/√n).
	Steps  int
	Sigma  float64
	Radius float64

	// Epochs, DriftSigma (key "dsigma"), Dims and Comms parameterize
	// the drift family: number of re-ranked epochs (default 4),
	// per-epoch Gaussian drift of each interest vector (default 0.15),
	// interest dimensionality (default 8) and community count (default
	// max(2, n/32)).
	Epochs     int
	DriftSigma float64
	Dims       int
	Comms      int

	// SuperFrac (key "superfrac") and SuperB (key "superb")
	// parameterize the hetero family: fraction of nodes promoted to
	// supernodes (default 0.05, at least one) and their quota (default
	// 8); B is the leaf quota.
	SuperFrac float64
	SuperB    int

	// Clique parameterizes the master family: the fraction of nodes in
	// the colluding clique (default 0.25).
	Clique float64
}

// Families returns the scenario family names in canonical order.
func Families() []string {
	return []string{"swarm", "geo", "drift", "hetero", "master", "antilocal"}
}

// Adversarial reports whether the family is one of the adversarial
// preference distributions (master-list collusion, anti-locally-
// heaviest gadgets) — the scenarios the tournament's "LID wins or
// ties" guard exempts.
func (s Spec) Adversarial() bool {
	return s.Family == "master" || s.Family == "antilocal"
}

// field describes one grammar key: its name, which families accept it,
// and accessors. Floats and ints share the table; Int fields use Get/
// Set through float64 without loss (all int fields are small counts).
type field struct {
	key      string
	families string // space-separated family list, "*" = all
	isInt    bool
	get      func(*Spec) float64
	set      func(*Spec, float64)
}

// fields is the canonical key order of the string form.
var fields = []field{
	{"n", "*", true, func(s *Spec) float64 { return float64(s.N) }, func(s *Spec, v float64) { s.N = int(v) }},
	{"b", "*", true, func(s *Spec) float64 { return float64(s.B) }, func(s *Spec, v float64) { s.B = int(v) }},
	{"swarms", "swarm", true, func(s *Spec) float64 { return float64(s.Swarms) }, func(s *Spec, v float64) { s.Swarms = int(v) }},
	{"joins", "swarm", true, func(s *Spec) float64 { return float64(s.Joins) }, func(s *Spec, v float64) { s.Joins = int(v) }},
	{"peers", "swarm", true, func(s *Spec) float64 { return float64(s.Peers) }, func(s *Spec, v float64) { s.Peers = int(v) }},
	{"zipf", "swarm", false, func(s *Spec) float64 { return s.Zipf }, func(s *Spec, v float64) { s.Zipf = v }},
	{"steps", "geo", true, func(s *Spec) float64 { return float64(s.Steps) }, func(s *Spec, v float64) { s.Steps = int(v) }},
	{"sigma", "geo", false, func(s *Spec) float64 { return s.Sigma }, func(s *Spec, v float64) { s.Sigma = v }},
	{"radius", "geo", false, func(s *Spec) float64 { return s.Radius }, func(s *Spec, v float64) { s.Radius = v }},
	{"epochs", "drift", true, func(s *Spec) float64 { return float64(s.Epochs) }, func(s *Spec, v float64) { s.Epochs = int(v) }},
	{"dsigma", "drift", false, func(s *Spec) float64 { return s.DriftSigma }, func(s *Spec, v float64) { s.DriftSigma = v }},
	{"dims", "drift", true, func(s *Spec) float64 { return float64(s.Dims) }, func(s *Spec, v float64) { s.Dims = int(v) }},
	{"comms", "drift", true, func(s *Spec) float64 { return float64(s.Comms) }, func(s *Spec, v float64) { s.Comms = int(v) }},
	{"superfrac", "hetero", false, func(s *Spec) float64 { return s.SuperFrac }, func(s *Spec, v float64) { s.SuperFrac = v }},
	{"superb", "hetero", true, func(s *Spec) float64 { return float64(s.SuperB) }, func(s *Spec, v float64) { s.SuperB = int(v) }},
	{"clique", "master", false, func(s *Spec) float64 { return s.Clique }, func(s *Spec, v float64) { s.Clique = v }},
}

func (f field) applies(family string) bool {
	if f.families == "*" {
		return true
	}
	for _, fam := range strings.Fields(f.families) {
		if fam == family {
			return true
		}
	}
	return false
}

func knownFamily(name string) bool {
	for _, f := range Families() {
		if f == name {
			return true
		}
	}
	return false
}

// maxN bounds the node count the grammar accepts: big enough for every
// benchmark, small enough that a fuzzed spec cannot ask Build for an
// allocation bomb.
const maxN = 10_000_000

// Validate checks the family name, that every non-default field is
// applicable to the family, and parameter ranges. Parse output always
// validates; Build validates again as its first step.
func (s Spec) Validate() error {
	if !knownFamily(s.Family) {
		return fmt.Errorf("workload: unknown family %q (want one of %s)", s.Family, strings.Join(Families(), "|"))
	}
	for _, f := range fields {
		v := f.get(&s)
		if v == 0 {
			continue
		}
		if !f.applies(s.Family) {
			return fmt.Errorf("workload: key %q does not apply to family %q", f.key, s.Family)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("workload: %s=%v invalid", f.key, v)
		}
	}
	if s.N > maxN {
		return fmt.Errorf("workload: n=%d above the %d ceiling", s.N, maxN)
	}
	for _, p := range []struct {
		key string
		v   float64
	}{{"zipf", s.Zipf}, {"dsigma", s.DriftSigma}} {
		if p.v > 16 {
			return fmt.Errorf("workload: %s=%v above 16", p.key, p.v)
		}
	}
	for _, p := range []struct {
		key string
		v   float64
	}{{"sigma", s.Sigma}, {"radius", s.Radius}, {"superfrac", s.SuperFrac}, {"clique", s.Clique}} {
		if p.v > 1.5 {
			return fmt.Errorf("workload: %s=%v above 1.5", p.key, p.v)
		}
	}
	for _, p := range []struct {
		key string
		v   int
	}{{"b", s.B}, {"swarms", s.Swarms}, {"joins", s.Joins}, {"peers", s.Peers},
		{"steps", s.Steps}, {"epochs", s.Epochs}, {"dims", s.Dims}, {"comms", s.Comms}, {"superb", s.SuperB}} {
		if p.v > 1_000_000 {
			return fmt.Errorf("workload: %s=%d above the 1000000 ceiling", p.key, p.v)
		}
	}
	if s.Family == "antilocal" && s.B > 1 {
		return fmt.Errorf("workload: antilocal forces b=1, got b=%d", s.B)
	}
	return nil
}

// String renders the canonical spec string: the family name, then
// ":key=value,..." with keys in fixed grammar order and defaulted
// (zero) fields omitted. A fully defaulted spec renders as the bare
// family name. Parse(s.String()) reproduces s for any valid spec.
func (s Spec) String() string {
	var parts []string
	for _, f := range fields {
		v := f.get(&s)
		if v == 0 {
			continue
		}
		if f.isInt {
			parts = append(parts, f.key+"="+strconv.Itoa(int(v)))
		} else {
			parts = append(parts, f.key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	if len(parts) == 0 {
		return s.Family
	}
	return s.Family + ":" + strings.Join(parts, ",")
}

// Parse builds a Spec from its string form: "family" or
// "family:key=value,...". Unknown families, inapplicable or repeated
// keys, and out-of-range values are errors. The result validates.
func Parse(in string) (Spec, error) {
	var s Spec
	in = strings.TrimSpace(in)
	family, params, hasParams := strings.Cut(in, ":")
	s.Family = strings.TrimSpace(family)
	if !knownFamily(s.Family) {
		return s, fmt.Errorf("workload: unknown family %q (want one of %s)", s.Family, strings.Join(Families(), "|"))
	}
	if hasParams {
		seen := map[string]bool{}
		for _, kv := range strings.Split(params, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				return s, fmt.Errorf("workload: empty field in %q", in)
			}
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return s, fmt.Errorf("workload: field %q is not key=value", kv)
			}
			f, ok := lookupField(k)
			if !ok {
				return s, fmt.Errorf("workload: unknown key %q", k)
			}
			if !f.applies(s.Family) {
				return s, fmt.Errorf("workload: key %q does not apply to family %q", k, s.Family)
			}
			if seen[k] {
				return s, fmt.Errorf("workload: key %q repeated", k)
			}
			seen[k] = true
			if f.isInt {
				iv, err := strconv.Atoi(v)
				if err != nil {
					return s, fmt.Errorf("workload: %s: %v", k, err)
				}
				f.set(&s, float64(iv))
			} else {
				fv, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return s, fmt.Errorf("workload: %s: %v", k, err)
				}
				f.set(&s, fv)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

func lookupField(key string) (field, bool) {
	for _, f := range fields {
		if f.key == key {
			return f, true
		}
	}
	return field{}, false
}

// Resolved returns the spec with every defaulted (zero) parameter
// replaced by its family default for the resolved node count — the
// exact instance Build constructs. Resolved specs still round-trip
// through Parse/String.
func (s Spec) Resolved() Spec {
	r := s
	if r.N == 0 {
		r.N = 256
	}
	if r.B == 0 {
		switch r.Family {
		case "hetero":
			r.B = 2
		case "antilocal":
			r.B = 1
		default:
			r.B = 3
		}
	}
	switch r.Family {
	case "swarm":
		if r.Swarms == 0 {
			r.Swarms = max(4, r.N/16)
		}
		if r.Joins == 0 {
			r.Joins = 2
		}
		if r.Peers == 0 {
			r.Peers = 4
		}
		if r.Zipf == 0 {
			r.Zipf = 1.2
		}
	case "geo":
		if r.Steps == 0 {
			r.Steps = 4
		}
		if r.Sigma == 0 {
			r.Sigma = 0.05
		}
		if r.Radius == 0 {
			r.Radius = 1.6 / math.Sqrt(math.Max(float64(r.N), 1))
			if r.Radius > 1 {
				r.Radius = 1
			}
		}
	case "drift":
		if r.Epochs == 0 {
			r.Epochs = 4
		}
		if r.DriftSigma == 0 {
			r.DriftSigma = 0.15
		}
		if r.Dims == 0 {
			r.Dims = 8
		}
		if r.Comms == 0 {
			r.Comms = max(2, r.N/32)
		}
	case "hetero":
		if r.SuperFrac == 0 {
			r.SuperFrac = 0.05
		}
		if r.SuperB == 0 {
			r.SuperB = 8
		}
	case "master":
		if r.Clique == 0 {
			r.Clique = 0.25
		}
	case "antilocal":
		r.B = 1
	}
	return r
}

// DefaultSuite returns one defaulted spec per family at node count n
// (0 keeps the family default size) — the scenario axis of the
// tournament bracket.
func DefaultSuite(n int) []Spec {
	var out []Spec
	for _, fam := range Families() {
		out = append(out, Spec{Family: fam, N: n})
	}
	return out
}
