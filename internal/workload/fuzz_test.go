package workload

import "testing"

// FuzzWorkloadSpecParse mirrors FuzzFaultSpecParse: anything Parse
// accepts must validate, render to a canonical string that re-parses
// to the same spec, and keep that canonical form stable — and neither
// Parse nor String may panic on any input.
func FuzzWorkloadSpecParse(f *testing.F) {
	f.Add("swarm")
	f.Add("swarm:n=512,zipf=1.4")
	f.Add("geo:n=128,steps=6,sigma=0.1,radius=0.2")
	f.Add("drift:epochs=3,dsigma=0.4,dims=4,comms=3")
	f.Add("hetero:superfrac=0.1,superb=12")
	f.Add("master:clique=0.5")
	f.Add("antilocal:n=40")
	f.Add("antilocal:b=2")
	f.Add("swarm:zipf=NaN")
	f.Add("swarm:n=99999999999")
	f.Add("geo:radius=1e300")
	f.Add("swarm:n=12,n=13")
	f.Add("bogus:n=1")
	f.Add("swarm:")
	f.Add(":n=1")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return // rejected input is fine; not panicking is the point
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid spec: %v", in, verr)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, in, err)
		}
		if s2 != s {
			t.Fatalf("round trip of %q changed the spec: %+v -> %+v", in, s, s2)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q", canon, s2.String())
		}
		// Resolution must stay inside the grammar for any accepted spec.
		r := s.Resolved()
		if verr := r.Validate(); verr != nil {
			t.Fatalf("Resolved(%q) = %+v does not validate: %v", canon, r, verr)
		}
		if _, rerr := Parse(r.String()); rerr != nil {
			t.Fatalf("resolved form %q does not re-parse: %v", r, rerr)
		}
	})
}
