package workload

import (
	"strings"
	"testing"
)

func TestSpecRoundTrip(t *testing.T) {
	cases := []string{
		"swarm",
		"geo",
		"drift",
		"hetero",
		"master",
		"antilocal",
		"swarm:n=512,zipf=1.4",
		"swarm:n=64,b=2,swarms=8,joins=3,peers=2,zipf=0.8",
		"geo:n=128,steps=6,sigma=0.1,radius=0.2",
		"drift:n=96,b=2,epochs=3,dsigma=0.4,dims=4,comms=3",
		"hetero:n=200,b=2,superfrac=0.1,superb=12",
		"master:n=80,clique=0.5",
		"antilocal:n=40",
		"antilocal:n=40,b=1",
	}
	for _, in := range cases {
		s, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", in, canon, err)
		}
		if s2 != s {
			t.Fatalf("round trip of %q changed the spec: %+v -> %+v", in, s, s2)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form of %q unstable: %q -> %q", in, canon, s2.String())
		}
	}
}

func TestSpecParseRejects(t *testing.T) {
	cases := []string{
		"",
		"unknownfamily",
		"swarm:",
		"swarm:n",
		"swarm:n=",
		"swarm:n=abc",
		"swarm:n=12,n=13",     // repeated key
		"swarm:steps=3",       // geo key on swarm
		"geo:zipf=1.2",        // swarm key on geo
		"swarm:zipf=NaN",      // NaN
		"swarm:zipf=-1",       // negative
		"swarm:zipf=100",      // above ceiling
		"geo:radius=7",        // above ceiling
		"master:clique=2",     // above ceiling
		"antilocal:b=2",       // antilocal forces b=1
		"swarm:n=99999999999", // above node ceiling
		"swarm:bogus=1",       // unknown key
	}
	for _, in := range cases {
		if s, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) accepted as %+v, want error", in, s)
		}
	}
}

func TestSpecResolvedFillsDefaults(t *testing.T) {
	for _, fam := range Families() {
		s := Spec{Family: fam}
		r := s.Resolved()
		if r.N == 0 || r.B == 0 && fam != "antilocal" {
			t.Fatalf("%s: Resolved left n/b at zero: %+v", fam, r)
		}
		if fam == "antilocal" && r.B != 1 {
			t.Fatalf("antilocal resolved quota %d, want 1", r.B)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: resolved spec does not validate: %v", fam, err)
		}
		// Resolved specs stay inside the grammar.
		rt, err := Parse(r.String())
		if err != nil {
			t.Fatalf("%s: resolved spec %q does not re-parse: %v", fam, r, err)
		}
		if rt != r {
			t.Fatalf("%s: resolved spec round trip changed: %+v -> %+v", fam, r, rt)
		}
		// Resolution is idempotent.
		if r.Resolved() != r {
			t.Fatalf("%s: Resolved not idempotent", fam)
		}
	}
}

func TestDefaultSuiteCoversEveryFamily(t *testing.T) {
	suite := DefaultSuite(64)
	if len(suite) != len(Families()) {
		t.Fatalf("DefaultSuite has %d specs for %d families", len(suite), len(Families()))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if s.N != 64 {
			t.Fatalf("DefaultSuite(64) produced n=%d", s.N)
		}
		seen[s.Family] = true
	}
	for _, fam := range Families() {
		if !seen[fam] {
			t.Fatalf("DefaultSuite misses family %s", fam)
		}
	}
}

func TestAdversarialFlag(t *testing.T) {
	adversarial := map[string]bool{"master": true, "antilocal": true}
	for _, fam := range Families() {
		if got := (Spec{Family: fam}).Adversarial(); got != adversarial[fam] {
			t.Fatalf("%s: Adversarial() = %v, want %v", fam, got, adversarial[fam])
		}
	}
}

func TestSpecStringBareFamily(t *testing.T) {
	for _, fam := range Families() {
		if got := (Spec{Family: fam}).String(); got != fam {
			t.Fatalf("defaulted spec renders %q, want bare family %q", got, fam)
		}
	}
	if got := (Spec{Family: "swarm", N: 32}).String(); got != "swarm:n=32" {
		t.Fatalf("spec string %q, want swarm:n=32", got)
	}
	if !strings.Contains((Spec{Family: "drift", DriftSigma: 0.25}).String(), "dsigma=0.25") {
		t.Fatal("dsigma key missing from drift spec string")
	}
}
