module overlaymatch

go 1.22
