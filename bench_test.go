package overlaymatch

// The benchmark harness: one testing.B target per experiment of
// DESIGN.md §3 (the paper has no tables/figures of its own — see
// EXPERIMENTS.md). Benchmarks report both wall-clock cost and, via
// b.ReportMetric, the headline quantity of the corresponding
// experiment (worst ratio, equality rate, messages per node, ...), so
// `go test -bench=. -benchmem` regenerates the quantitative story.

import (
	"testing"
	"time"

	"overlaymatch/internal/dlid"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/robust"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/variants"

	"overlaymatch/internal/gen"
)

// benchSystem builds the standard benchmark workload.
func benchSystem(seed uint64, n int, p float64, bq int) *pref.System {
	src := rng.New(seed)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(bq))
	if err != nil {
		panic(err)
	}
	return s
}

// BenchmarkLICRatio (E1 / Theorem 2): LIC vs exact optimum on
// oracle-sized instances; reports the worst observed ratio.
func BenchmarkLICRatio(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		s := benchSystem(uint64(i), 10, 0.4, 2)
		if s.Graph().NumEdges() > matching.MaxOracleEdges || s.Graph().NumEdges() == 0 {
			continue
		}
		tbl := satisfaction.NewTable(s)
		licW := matching.LIC(s, tbl).Weight(s)
		_, optW, err := matching.MaxWeightBMatching(s, tbl)
		if err != nil {
			b.Fatal(err)
		}
		if optW > 0 && licW/optW < worst {
			worst = licW / optW
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

// BenchmarkLIDvsLIC (E2 / Lemmas 3–6): one full distributed run plus
// the equality check against LIC; reports the equality rate (must
// print 1).
func BenchmarkLIDvsLIC(b *testing.B) {
	s := benchSystem(42, 200, 0.04, 3)
	tbl := satisfaction.NewTable(s)
	want := matching.LIC(s, tbl)
	equal := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lid.RunEvent(s, tbl, simnet.Options{
			Seed: uint64(i), Latency: simnet.ExponentialLatency(5),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Matching.Equal(want) {
			equal++
		}
	}
	b.ReportMetric(float64(equal)/float64(b.N), "equal-rate")
}

// BenchmarkSatisfactionRatio (E3 / Theorem 3): LID satisfaction vs the
// exact satisfaction optimum; reports the worst observed ratio.
func BenchmarkSatisfactionRatio(b *testing.B) {
	worst := 1.0
	for i := 0; i < b.N; i++ {
		s := benchSystem(uint64(i)+1000, 9, 0.4, 2)
		if s.Graph().NumEdges() > 24 || s.Graph().NumEdges() == 0 {
			continue
		}
		tbl := satisfaction.NewTable(s)
		lidSat := matching.LIC(s, tbl).TotalSatisfaction(s)
		_, opt, err := matching.MaxSatisfactionBMatching(s)
		if err != nil {
			b.Fatal(err)
		}
		if opt > 0 && lidSat/opt < worst {
			worst = lidSat / opt
		}
	}
	b.ReportMetric(worst, "worst-ratio")
}

// BenchmarkStaticShare (E4 / Lemma 1): static/dynamic split over a full
// LIC matching; reports the minimum observed static share.
func BenchmarkStaticShare(b *testing.B) {
	s := benchSystem(7, 300, 0.03, 4)
	tbl := satisfaction.NewTable(s)
	m := matching.LIC(s, tbl)
	minShare := 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for node := 0; node < s.Graph().NumNodes(); node++ {
			st, dy := satisfaction.Split(s, node, m.Connections(node))
			if st+dy > 1e-12 {
				if sh := st / (st + dy); sh < minShare {
					minShare = sh
				}
			}
		}
	}
	b.ReportMetric(minShare, "min-share")
}

// BenchmarkLIDMessages (E5 / Lemma 5): full protocol run; reports mean
// messages per node.
func BenchmarkLIDMessages(b *testing.B) {
	s := benchSystem(11, 400, 0.02, 3)
	tbl := satisfaction.NewTable(s)
	var msgsPerNode float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lid.RunEvent(s, tbl, simnet.Options{
			Seed: uint64(i), Latency: simnet.ExponentialLatency(4),
		})
		if err != nil {
			b.Fatal(err)
		}
		msgsPerNode = float64(res.Stats.TotalSent()) / float64(s.Graph().NumNodes())
	}
	b.ReportMetric(msgsPerNode, "msgs/node")
}

// BenchmarkLIDRounds (E6): unit-latency run; reports causal rounds to
// quiescence.
func BenchmarkLIDRounds(b *testing.B) {
	s := benchSystem(13, 400, 0.02, 3)
	tbl := satisfaction.NewTable(s)
	var rounds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lid.RunEvent(s, tbl, simnet.Options{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.FinalTime
	}
	b.ReportMetric(rounds, "rounds")
}

// BenchmarkBaselines (E7): all four strategies on one workload;
// reports LID's satisfaction advantage over the random baseline.
func BenchmarkBaselines(b *testing.B) {
	s := benchSystem(17, 150, 0.06, 3)
	tbl := satisfaction.NewTable(s)
	var advantage float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lidSat := matching.LIC(s, tbl).TotalSatisfaction(s)
		randSat := matching.RandomMaximal(s, rng.New(uint64(i))).TotalSatisfaction(s)
		_ = matching.SelfishTopB(s)
		_ = matching.BestResponse(s, rng.New(uint64(i)+1), 2000)
		advantage = lidSat / randSat
	}
	b.ReportMetric(advantage, "lid/random-sat")
}

// BenchmarkChurn (E9 / §7): one churn event (leave or join) through the
// preemptive repair path; reports mean edges examined per event.
func BenchmarkChurn(b *testing.B) {
	s := benchSystem(19, 200, 0.04, 3)
	o := dynamic.NewOverlay(s, dynamic.PreemptLighter)
	src := rng.New(99)
	examined := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := src.Intn(s.Graph().NumNodes())
		var st dynamic.EventStats
		if o.Alive(x) {
			if o.NumAlive() <= 2 {
				continue
			}
			st = o.Leave(x)
		} else {
			st = o.Join(x)
		}
		examined += st.Examined
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(examined)/float64(b.N), "examined/event")
	}
}

// BenchmarkScaleLIC (E10): the centralized scan at n=2000, avg deg 8.
func BenchmarkScaleLIC(b *testing.B) {
	s := benchSystem(23, 2000, 8.0/1999.0, 3)
	tbl := satisfaction.NewTable(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = matching.LIC(s, tbl)
	}
}

// BenchmarkScaleLIDEvent (E10): the event-driven protocol at n=2000.
func BenchmarkScaleLIDEvent(b *testing.B) {
	s := benchSystem(29, 2000, 8.0/1999.0, 3)
	tbl := satisfaction.NewTable(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lid.RunEvent(s, tbl, simnet.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleLIDGoroutines (E10): the concurrent runtime at n=500.
func BenchmarkScaleLIDGoroutines(b *testing.B) {
	s := benchSystem(31, 500, 8.0/499.0, 3)
	tbl := satisfaction.NewTable(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lid.RunGoroutines(s, tbl, 60*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLICLiteral: the literal Algorithm 2 with incremental
// locally-heaviest maintenance. Regression guard for the cursor-based
// pool: the pre-dense rescanning implementation was O(m²) and two
// orders of magnitude slower at this size.
func BenchmarkLICLiteral(b *testing.B) {
	s := benchSystem(59, 2000, 8.0/1999.0, 3)
	tbl := satisfaction.NewTable(s)
	want := matching.LIC(s, tbl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := matching.LICLiteral(s, tbl, rng.New(uint64(i)))
		if !m.Equal(want) {
			b.Fatal("LICLiteral diverged from LIC")
		}
	}
}

// BenchmarkWeightTable: eq.-9 weight computation for a whole graph.
func BenchmarkWeightTable(b *testing.B) {
	s := benchSystem(37, 2000, 8.0/1999.0, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = satisfaction.NewTable(s)
	}
}

// BenchmarkPublicAPI: the facade end to end at a moderate size.
func BenchmarkPublicAPI(b *testing.B) {
	edges := RandomEdges(5, 300, 0.04)
	for i := 0; i < b.N; i++ {
		net := MustBuild(Spec{
			NumNodes: 300,
			Edges:    edges,
			Quota:    func(int) int { return 3 },
			Metric:   func(x, y int) float64 { return float64((x*7 + y*13) % 101) },
		})
		if _, err := net.RunDistributed(RunOptions{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLossyLinks (E11): one LID run through the ack/retransmit
// substrate at 30% loss; reports the retransmission overhead.
func BenchmarkLossyLinks(b *testing.B) {
	s := benchSystem(41, 100, 0.08, 2)
	tbl := satisfaction.NewTable(s)
	var overhead float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := lid.NewNodes(s, tbl)
		eps := reliable.Wrap(lid.Handlers(nodes), 30, 0)
		runner := simnet.NewRunner(s.Graph().NumNodes(), simnet.Options{
			Seed:    uint64(i),
			Drop:    simnet.UniformDrop(0.3),
			Latency: simnet.ExponentialLatency(3),
		})
		stats, err := runner.Run(reliable.Handlers(eps))
		if err != nil {
			b.Fatal(err)
		}
		overhead = float64(reliable.TotalRetransmits(eps)) / float64(stats.TotalSent())
	}
	b.ReportMetric(overhead, "retransmit-frac")
}

// BenchmarkAdversaries (E12): tolerant LID with 20% crashed peers;
// reports the honest-to-baseline satisfaction ratio.
func BenchmarkAdversaries(b *testing.B) {
	s := benchSystem(43, 100, 0.08, 2)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := robust.Scenario{
			System:      s,
			Adversaries: robust.FractionAdversaries(100, 0.2, robust.AdvCrash),
			Timeout:     60,
			Options:     simnet.Options{Seed: uint64(i), Latency: simnet.UniformLatency(1, 3)},
		}
		out, err := sc.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.BaselineSatisfaction > 0 {
			ratio = out.HonestSatisfaction / out.BaselineSatisfaction
		}
	}
	b.ReportMetric(ratio, "honest-sat-ratio")
}

// BenchmarkVariants (E13): coverage-first plus the local-search pass;
// reports the weight gain of the improvement pass over LIC.
func BenchmarkVariants(b *testing.B) {
	s := benchSystem(47, 200, 0.04, 3)
	tbl := satisfaction.NewTable(s)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = variants.CoverageFirst(s, tbl)
		m := matching.LIC(s, tbl)
		before := m.Weight(s)
		variants.Improve(s, tbl, m)
		gain = m.Weight(s)/before - 1
	}
	b.ReportMetric(gain, "improve-gain")
}

// BenchmarkMaintenance (E14): one churn event through the distributed
// dlid maintenance protocol; reports messages per event.
func BenchmarkMaintenance(b *testing.B) {
	s := benchSystem(53, 150, 0.06, 3)
	tbl := satisfaction.NewTable(s)
	schedule := dlid.Schedule(s, rng.New(4), 50, 60, 0.5, 50)
	var perEvent float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dlid.Run(s, tbl, schedule, simnet.Options{
			Seed:    uint64(i),
			Latency: simnet.ExponentialLatency(0.5),
		})
		if err != nil {
			b.Fatal(err)
		}
		perEvent = float64(res.Stats.TotalSent()) / float64(len(schedule))
	}
	b.ReportMetric(perEvent, "msgs/event")
}
