// Hostile: the deployment-grade stack. Real overlays run over links
// that drop packets and alongside peers that crash mid-protocol — two
// things the paper's model assumes away (§5: reliable links; §7 lists
// malicious nodes as future work). This example composes the
// repository's answers: tolerant LID (proposal timeouts + revocable
// locks) on top of the ack/retransmit reliability substrate, over a
// network losing 25% of messages, with 15% of peers crash-faulty.
// It reports what the hostile environment actually costs relative to
// the clean run on the honest subgraph.
package main

import (
	"fmt"
	"log"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/robust"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
)

const (
	numPeers  = 80
	quota     = 2
	lossRate  = 0.25
	crashFrac = 0.15
)

func main() {
	src := rng.New(21)
	g := gen.GNP(src, numPeers, 8.0/float64(numPeers-1))
	sys, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(quota))
	if err != nil {
		log.Fatal(err)
	}
	tbl := satisfaction.NewTable(sys)
	adversaries := robust.FractionAdversaries(numPeers, crashFrac, robust.AdvCrash)

	fmt.Printf("overlay: %d peers (%d crash-faulty), %d potential links\n",
		numPeers, len(adversaries), g.NumEdges())
	fmt.Printf("network: %.0f%% message loss, heavy-tailed latency\n\n", 100*lossRate)

	// Assemble the stack: tolerant nodes (or adversaries) wrapped in
	// reliability endpoints, over a lossy event-simulated network.
	handlers := make([]simnet.Handler, numPeers)
	var honest []*robust.TolerantNode
	for id := 0; id < numPeers; id++ {
		if _, bad := adversaries[id]; bad {
			handlers[id] = robust.Crash{}
			continue
		}
		n := robust.NewTolerantNode(sys, tbl, id, 500)
		honest = append(honest, n)
		handlers[id] = n
	}
	eps := reliable.Wrap(handlers, 10, 0)
	runner := simnet.NewRunner(numPeers, simnet.Options{
		Seed:    5,
		Drop:    simnet.UniformDrop(lossRate),
		Latency: simnet.ExponentialLatency(1.5),
	})
	stats, err := runner.Run(reliable.Handlers(eps))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run quiesced: %d frames sent, %d dropped by the network,\n",
		stats.TotalSent(), stats.Dropped)
	fmt.Printf("  %d retransmissions, %d duplicates suppressed by the substrate\n",
		reliable.TotalRetransmits(eps), reliable.TotalDuplicates(eps))

	var revocations, connections int
	var honestSat float64
	for _, n := range honest {
		revocations += n.Revocations
		conns := n.Locked()
		live := conns[:0]
		for _, v := range conns {
			if _, bad := adversaries[v]; !bad {
				live = append(live, v)
			}
		}
		connections += len(live)
		honestSat += satisfaction.Value(sys, n.ID(), live)
	}
	fmt.Printf("  %d proposals revoked by timeout (crashed peers absorbed)\n\n", revocations)

	fmt.Printf("honest peers: %d, connections: %d, total satisfaction %.2f (mean %.3f)\n",
		len(honest), connections/2, honestSat, honestSat/float64(len(honest)))
	fmt.Println("the same protocol deadlocks without timeouts and corrupts state without acks;")
	fmt.Println("see internal/robust and internal/reliable tests for the proofs-by-simulation.")
}
