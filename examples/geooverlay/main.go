// Geooverlay: the latency-driven scenario — peers scattered in a plane
// (think round-trip time) prefer nearby peers. The demo quantifies how
// much shorter the matched links are than the available ones, and
// shows the goroutine runtime producing the identical overlay to the
// deterministic simulation (the Lemma 3-6 equivalence, live).
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"overlaymatch"
)

const (
	numPeers = 200
	radius   = 0.14
	quota    = 3
)

func main() {
	edges, coords := overlaymatch.GeometricEdges(31, numPeers, radius)

	dist := func(i, j int) float64 {
		dx := coords[i][0] - coords[j][0]
		dy := coords[i][1] - coords[j][1]
		return math.Sqrt(dx*dx + dy*dy)
	}

	net, err := overlaymatch.Build(overlaymatch.Spec{
		NumNodes: numPeers,
		Edges:    edges,
		Quota:    func(i int) int { return quota },
		Metric:   func(i, j int) float64 { return -dist(i, j) }, // nearer = better
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("geo overlay: %d peers, %d potential links within radius %.2f\n",
		numPeers, net.NumEdges(), radius)
	fmt.Printf("distance preferences are symmetric, so the system is acyclic: %v\n\n", net.Acyclic())

	// Deterministic simulation.
	sim, err := net.RunDistributed(overlaymatch.RunOptions{Seed: 2, LatencyJitter: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Real goroutines — one per peer, Go scheduler interleavings.
	gor, err := net.RunDistributedGoroutines(time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if sim.Weight() != gor.Weight() || sim.NumConnections() != gor.NumConnections() {
		log.Fatal("runtimes disagree — Lemmas 3-6 violated?!")
	}
	fmt.Printf("event simulation and %d concurrent goroutines chose the identical %d links.\n\n",
		numPeers, sim.NumConnections())

	// How much shorter are the chosen links than the available ones?
	var availSum float64
	for _, e := range edges {
		availSum += dist(e.U, e.V)
	}
	var chosenSum float64
	for _, e := range sim.Edges() {
		chosenSum += dist(e.U, e.V)
	}
	availMean := availSum / float64(len(edges))
	chosenMean := chosenSum / float64(sim.NumConnections())
	fmt.Printf("mean available link length: %.4f\n", availMean)
	fmt.Printf("mean chosen link length:    %.4f (%.1f%% shorter)\n",
		chosenMean, 100*(1-chosenMean/availMean))

	var totalSat float64
	for i := 0; i < numPeers; i++ {
		totalSat += sim.Satisfaction(i)
	}
	fmt.Printf("mean satisfaction: %.3f; protocol cost: %d messages, %.1f rounds\n",
		totalSat/numPeers, sim.PropMessages+sim.RejMessages, sim.Rounds)
	if chosenMean >= availMean {
		log.Fatal("expected matched links to be shorter than the average available link")
	}
}
