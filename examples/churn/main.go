// Churn: the paper's §7 future-work scenario — peers joining and
// leaving a live overlay. This example exercises the repository's
// dynamic extension (internal/dynamic): the overlay starts from the
// LIC matching, then absorbs a stream of leave/join events, repairing
// locally after each one, and reports how closely the repaired overlay
// tracks a from-scratch recomputation under both repair policies.
package main

import (
	"fmt"
	"log"

	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/gen"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

const (
	numPeers = 100
	quota    = 3
	events   = 60
)

func main() {
	src := rng.New(17)
	g := gen.GNP(src, numPeers, 10.0/float64(numPeers-1))
	sys, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(quota))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("universe: %d peers, %d potential links, quota %d, %d churn events\n\n",
		numPeers, g.NumEdges(), quota, events)

	for _, pol := range []struct {
		name   string
		policy dynamic.Policy
	}{
		{"completion-only repair", dynamic.CompleteOnly},
		{"preemptive repair", dynamic.PreemptLighter},
	} {
		o := dynamic.NewOverlay(sys, pol.policy)
		recs, err := dynamic.RunChurn(o, dynamic.ChurnOptions{
			Events: events, Seed: 4, LeaveProb: 0.5, MinAlive: numPeers / 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := o.Validate(); err != nil {
			log.Fatal(err)
		}

		var examined, added, removed int
		var qualSum, qualMin float64 = 0, 2
		for _, r := range recs {
			examined += r.Stats.Examined
			added += r.Stats.Added
			removed += r.Stats.Removed
			qualSum += r.Quality
			if r.Quality < qualMin {
				qualMin = r.Quality
			}
		}
		n := float64(len(recs))
		fmt.Printf("%s:\n", pol.name)
		fmt.Printf("  per event: %.1f edges examined, %.2f added, %.2f removed\n",
			float64(examined)/n, float64(added)/n, float64(removed)/n)
		fmt.Printf("  quality vs fresh recomputation: mean %.4f, min %.4f\n",
			qualSum/n, qualMin)
		fmt.Printf("  final: %d alive peers, %d live connections, live satisfaction %.2f\n\n",
			o.NumAlive(), o.Matching().Size(), o.LiveSatisfaction())
	}
	fmt.Println("preemptive repair buys near-perfect quality for a modest extra repair cost.")
}
