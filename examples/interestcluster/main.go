// Interestcluster: the "interest heterogeneity" scenario from the
// paper's conclusion — peers with different interests collaborating in
// one overlay. Peers belong to latent topic communities and score
// neighbors by cosine similarity of noisy interest vectors. The demo
// measures how strongly the matched overlay aligns with the hidden
// communities compared to the random potential links, i.e. whether
// preference-aware matching recovers the clustering.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"overlaymatch"
)

const (
	numPeers  = 150
	numTopics = 5
	quota     = 3
	noise     = 0.35
)

func main() {
	rnd := rand.New(rand.NewSource(11))

	// Hidden communities and noisy interest vectors.
	community := make([]int, numPeers)
	interests := make([][]float64, numPeers)
	for i := range interests {
		community[i] = i % numTopics
		v := make([]float64, numTopics)
		for t := range v {
			v[t] = noise * rnd.Float64()
		}
		v[community[i]] = 1
		interests[i] = v
	}

	cosine := func(a, b []float64) float64 {
		var dot, na, nb float64
		for k := range a {
			dot += a[k] * b[k]
			na += a[k] * a[k]
			nb += b[k] * b[k]
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return dot / math.Sqrt(na*nb)
	}

	// A small-world substrate of potential connections.
	edges := overlaymatch.SmallWorldEdges(23, numPeers, 10, 0.5)

	net, err := overlaymatch.Build(overlaymatch.Spec{
		NumNodes: numPeers,
		Edges:    edges,
		Quota:    func(i int) int { return quota },
		Metric:   func(i, j int) float64 { return cosine(interests[i], interests[j]) },
	})
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: how community-aligned are the *potential* links?
	same, total := 0, 0
	for _, e := range edges {
		total++
		if community[e.U] == community[e.V] {
			same++
		}
	}
	baseline := float64(same) / float64(total)

	result, err := net.RunDistributed(overlaymatch.RunOptions{Seed: 5, LatencyJitter: 2})
	if err != nil {
		log.Fatal(err)
	}

	sameM, totalM := 0, 0
	for _, e := range result.Edges() {
		totalM++
		if community[e.U] == community[e.V] {
			sameM++
		}
	}
	matched := float64(sameM) / float64(totalM)

	fmt.Printf("peers: %d in %d hidden topic communities, substrate: %d links\n",
		numPeers, numTopics, total)
	fmt.Printf("substrate community alignment: %.1f%% of links intra-community\n", 100*baseline)
	fmt.Printf("matched overlay:               %.1f%% of %d connections intra-community\n",
		100*matched, totalM)
	fmt.Printf("clustering lift: %.2fx\n\n", matched/baseline)

	var totalSat float64
	for i := 0; i < numPeers; i++ {
		totalSat += result.Satisfaction(i)
	}
	fmt.Printf("mean satisfaction %.3f with %d messages total\n",
		totalSat/numPeers, result.PropMessages+result.RejMessages)
	if matched <= baseline {
		log.Fatal("expected the preference-aware overlay to beat the substrate alignment")
	}
	fmt.Println("preference-aware matching recovered the latent communities.")
}
