// Filesharing: the resource-sharing scenario from the paper's
// introduction. Peers have heterogeneous upload bandwidth (a few
// seeders, many leechers) plus a private view of past transactions;
// each scores neighbors by a blend of the target's bandwidth and its
// own interaction history — the classic tit-for-tat-flavoured metric.
//
// The demo shows the coordination effect: everyone covets the seeders,
// but the seeders' quotas are limited, so a naive "ask your top
// choices" strategy leaves most peers unserved. LID negotiates the
// contention and fills almost every quota slot while still sending the
// best-connected peers to the seeders that value them back.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"overlaymatch"
)

const (
	numPeers   = 120
	numSeeders = 12 // peers 0..11 have 10x bandwidth
	quota      = 3
)

func main() {
	rnd := rand.New(rand.NewSource(7)) // example-local randomness

	// Upload bandwidth: seeders fast, leechers slow with some spread.
	bandwidth := make([]float64, numPeers)
	for i := range bandwidth {
		if i < numSeeders {
			bandwidth[i] = 80 + 40*rnd.Float64()
		} else {
			bandwidth[i] = 2 + 10*rnd.Float64()
		}
	}

	// Transaction history: how much peer i feels it owes / is owed by j.
	history := make([][]float64, numPeers)
	for i := range history {
		history[i] = make([]float64, numPeers)
		for j := range history[i] {
			if i != j {
				history[i][j] = rnd.NormFloat64()
			}
		}
	}

	// Potential connections: a random overlay with average degree ~12.
	edges := overlaymatch.RandomEdges(99, numPeers, 12.0/float64(numPeers-1))

	net, err := overlaymatch.Build(overlaymatch.Spec{
		NumNodes: numPeers,
		Edges:    edges,
		Quota:    func(i int) int { return quota },
		// 70% "how fast can they serve me", 30% "do I trust them".
		Metric: func(i, j int) float64 {
			return 0.7*bandwidth[j] + 0.3*10*history[i][j]
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swarm: %d peers (%d seeders), %d potential links, quota %d\n",
		numPeers, numSeeders, net.NumEdges(), quota)
	fmt.Printf("preference system acyclic: %v (history makes it cyclic-prone)\n\n", net.Acyclic())

	result, err := net.RunDistributed(overlaymatch.RunOptions{Seed: 1, LatencyJitter: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Who got served, by class?
	var seederConns, leecherConns, leecherWithSeeder int
	for i := 0; i < numPeers; i++ {
		conns := result.Connections(i)
		if i < numSeeders {
			seederConns += len(conns)
			continue
		}
		leecherConns += len(conns)
		for _, j := range conns {
			if j < numSeeders {
				leecherWithSeeder++
				break
			}
		}
	}
	fmt.Printf("connections: %d total (%d PROP / %d REJ messages, %.1f rounds)\n",
		result.NumConnections(), result.PropMessages, result.RejMessages, result.Rounds)
	fmt.Printf("seeders hold %d connection endpoints (their quota total: %d)\n",
		seederConns, numSeeders*quota)
	fmt.Printf("%d of %d leechers secured at least one seeder link\n",
		leecherWithSeeder, numPeers-numSeeders)

	var totalSat, worst float64 = 0, 1
	for i := 0; i < numPeers; i++ {
		s := result.Satisfaction(i)
		totalSat += s
		if s < worst {
			worst = s
		}
	}
	fmt.Printf("satisfaction: mean %.3f, worst %.3f (guarantee factor %.3f of optimum in total)\n",
		totalSat/numPeers, worst, net.ApproximationBound())
}
