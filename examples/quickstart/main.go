// Quickstart: six peers, a hand-written affinity metric, quota 2 each.
// Build the network, run the distributed algorithm, inspect who
// connected to whom and how satisfied everyone is.
package main

import (
	"fmt"
	"log"

	"overlaymatch"
)

func main() {
	// The overlay graph: who *could* connect to whom.
	edges := []overlaymatch.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 4},
		{U: 2, V: 5}, {U: 3, V: 4}, {U: 4, V: 5},
	}

	// Each peer scores its neighbors privately; here a toy affinity.
	// Any deterministic function works — distance, trust, bandwidth...
	affinity := func(i, j int) float64 {
		return float64((7*i + 13*j) % 10)
	}

	net, err := overlaymatch.Build(overlaymatch.Spec{
		NumNodes: 6,
		Edges:    edges,
		Quota:    func(i int) int { return 2 },
		Metric:   affinity,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d peers, %d potential connections, acyclic prefs: %v\n",
		net.NumNodes(), net.NumEdges(), net.Acyclic())
	fmt.Printf("guarantee: >= %.2f of optimal total satisfaction (Theorem 3)\n\n",
		net.ApproximationBound())

	// Run the fully distributed protocol (deterministic simulation).
	result, err := net.RunDistributed(overlaymatch.RunOptions{Seed: 42, LatencyJitter: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("established %d connections with %d PROP + %d REJ messages:\n",
		result.NumConnections(), result.PropMessages, result.RejMessages)
	for i := 0; i < net.NumNodes(); i++ {
		fmt.Printf("  peer %d -> %v  (wanted %v, satisfaction %.3f)\n",
			i, result.Connections(i), net.PreferenceList(i), result.Satisfaction(i))
	}
	fmt.Printf("total satisfaction: %.3f\n", result.TotalSatisfaction())

	// The centralized algorithm provably picks the same connections.
	if net.RunCentralized().Weight() == result.Weight() {
		fmt.Println("centralized LIC agrees with the distributed run (Lemmas 3-6).")
	}
}
