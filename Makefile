# Developer entry points. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build check test test-short race race-core registry-coverage golden-check loopback-check vet fuzz fuzz-smoke bench bench-json bench-check experiments examples cover clean

all: build vet test

# The default pre-commit gate: full build + vet + tests, plus the race
# detector on the concurrency-bearing packages (the metrics registry,
# both simnet runtimes, and the fault-injection explorer), the
# experiment-registry coverage sweep, a short fuzz pass over the
# parsers, the golden-output regeneration diff (possible since the
# golden file is timing-free; any drift in any experiment fails here),
# the benchmark regression gate, and the real-socket loopback
# conformance run.
check: build vet test race-core registry-coverage fuzz-smoke golden-check bench-check loopback-check

# Vet first so a broken build fails fast instead of surfacing as a
# confusing mid-run race failure. The dense-core packages (graph, pref,
# satisfaction, matching, lid) are included: they share read-only CSR
# slices across goroutines, which the race detector must keep honest.
race-core: vet
	$(GO) test -race -short ./internal/par/... ./internal/metrics/... ./internal/simnet/... ./internal/faults/... ./internal/detector/... ./internal/reliable/... ./internal/graph/... ./internal/pref/... ./internal/satisfaction/... ./internal/matching/... ./internal/lid/... ./internal/obs/... ./internal/workload/... ./internal/tournament/... ./internal/dynamic/... ./internal/transport/...

# Every registered experiment must still run under quick parameters —
# catches experiments silently falling out of the registry.
registry-coverage:
	$(GO) test -run TestRegistryQuickCoverage -count=1 ./internal/experiments

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Continuous fuzzing entry points (ctrl-C to stop).
fuzz:
	$(GO) test -fuzz FuzzLIDEquivalence -fuzztime 60s ./internal/lid

# Short deterministic-budget fuzz pass over the input parsers — the
# CI-sized version of `fuzz` (30s per target).
fuzz-smoke:
	$(GO) test -fuzz FuzzFaultSpecParse -fuzztime 30s ./internal/faults
	$(GO) test -fuzz FuzzReplayFile -fuzztime 30s ./internal/faults
	$(GO) test -fuzz FuzzDetectorConfigParse -fuzztime 30s ./internal/detector
	$(GO) test -fuzz FuzzWorkloadSpecParse -fuzztime 30s ./internal/workload
	$(GO) test -fuzz FuzzChurnSpecParse -fuzztime 30s ./internal/dynamic
	$(GO) test -fuzz FuzzFrameDecode -fuzztime 30s ./internal/transport
	$(GO) test -fuzz FuzzSchedulerSpecParse -fuzztime 30s ./internal/lid

bench:
	$(GO) test -bench=. -benchmem ./...

# Deterministic machine-readable benchmark trajectory: fixed seeds and
# iteration counts. PR10 adds the scheduler rows (the same LID workload
# under canonical and greedy admission — the message-count delta is the
# scheduler's payoff); the *Par benchmarks sweep worker counts 1/2/4
# (the workload columns must be identical at each count); BENCH_PR4.json
# through BENCH_PR8.json stay committed as the previous points of the
# trajectory.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR10.json -phase after -merge -workers-sweep 1,2,4

# Benchmark regression gate: fresh -quick measurements must stay within
# tolerance of the committed PR8 baseline (allocation figures gated,
# workload metrics exact, wall clock report-only; rows new in PR10 are
# notes, not failures), and — the negative controls — must FAIL against
# a synthetically regressed fixture and against a baseline that mixes
# workers=0 rows with explicit worker counts in one family (the PR 10
# matchBaseline fallback bug), so a broken gate cannot pass silently.
bench-check:
	$(GO) test -count=1 ./cmd/benchjson
	$(GO) run ./cmd/benchjson -quick -compare BENCH_PR8.json
	! $(GO) run ./cmd/benchjson -quick -compare cmd/benchjson/testdata/regressed_baseline.json
	! $(GO) run ./cmd/benchjson -quick -compare cmd/benchjson/testdata/mixed_workers_baseline.json

# The golden experiments file must regenerate to the exact committed
# bytes: wall-clock columns now live in the manifest/metrics sink, so
# any diff is a real behavior change (or an unintended nondeterminism)
# and fails the gate.
golden-check:
	$(GO) run ./cmd/experiments -run all -seed 1 -out .experiments_regen.txt
	diff -u experiments_full.txt .experiments_regen.txt
	rm -f .experiments_regen.txt

# Real-socket conformance: a seeded workload runs once on the
# deterministic event simulator and once on a loopback UDP cluster
# (internal/transport) with the full reliable/detector stack; the
# matching must be the same LIC either way. This is the gate that keeps
# the wire layer honest against the simulator the experiments certify.
loopback-check:
	$(GO) test -count=1 -run 'TestLoopbackClusterLIC|TestClusterCoalescing' ./internal/transport

# Regenerate the validation suite (EXPERIMENTS.md's source of truth).
experiments:
	$(GO) run ./cmd/experiments -run all -seed 1 -out experiments_full.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/filesharing
	$(GO) run ./examples/interestcluster
	$(GO) run ./examples/geooverlay
	$(GO) run ./examples/churn
	$(GO) run ./examples/hostile

cover:
	$(GO) test ./... -coverprofile=cover.out -covermode=count
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out .experiments_regen.txt
