package overlaymatch_test

import (
	"fmt"

	"overlaymatch"
)

// A minimal end-to-end run: a path of four peers with explicit
// preference lists and quota 1. Peers 0–1 and 2–3 prefer each other
// mutually, so the matching is forced and the example output is
// deterministic.
func Example() {
	net, err := overlaymatch.Build(overlaymatch.Spec{
		NumNodes: 4,
		Edges:    []overlaymatch.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}},
		Lists: [][]int{
			{1},    // 0 knows only 1
			{0, 2}, // 1 prefers 0
			{3, 1}, // 2 prefers 3
			{2},    // 3 knows only 2
		},
	})
	if err != nil {
		panic(err)
	}
	res, err := net.RunDistributed(overlaymatch.RunOptions{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("connections:", res.Edges())
	fmt.Printf("total satisfaction: %.2f\n", res.TotalSatisfaction())
	// Output:
	// connections: [{0 1} {2 3}]
	// total satisfaction: 4.00
}

// Building from a metric: every peer scores neighbors with a private
// function; only the ranking it induces matters.
func ExampleBuild() {
	net := overlaymatch.MustBuild(overlaymatch.Spec{
		NumNodes: 5,
		Edges:    overlaymatch.RingEdges(5),
		Quota:    func(i int) int { return 2 },
		Metric:   func(i, j int) float64 { return -float64((j - i + 5) % 5) },
	})
	fmt.Println("peers:", net.NumNodes(), "links:", net.NumEdges())
	fmt.Printf("guarantee: %.4f of optimal satisfaction\n", net.ApproximationBound())
	// Output:
	// peers: 5 links: 5
	// guarantee: 0.3750 of optimal satisfaction
}

// The centralized and distributed algorithms provably agree (Lemmas
// 3–6); a ring with quota 2 locks every edge.
func ExampleNetwork_RunCentralized() {
	net := overlaymatch.MustBuild(overlaymatch.Spec{
		NumNodes: 6,
		Edges:    overlaymatch.RingEdges(6),
		Quota:    func(i int) int { return 2 },
		Metric:   func(i, j int) float64 { return 1 }, // ties broken by ID
	})
	res := net.RunCentralized()
	fmt.Println("connections:", res.NumConnections(), "of", net.NumEdges())
	fmt.Printf("everyone satisfied: %.0f/6\n", res.TotalSatisfaction())
	// Output:
	// connections: 6 of 6
	// everyone satisfied: 6/6
}
