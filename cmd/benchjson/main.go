// Command benchjson runs the core data-layer benchmarks with fixed
// seeds and fixed iteration counts and writes the results as JSON rows
// (ns/op, B/op, allocs/op plus headline metrics). It seeds the repo's
// persisted perf trajectory: `make bench-json` regenerates
// BENCH_PR10.json, and rows are tagged with a phase ("before"/"after")
// so a representation change can commit its own measured payoff next
// to the baseline it replaced.
//
// Workloads are the standard benchmark family (GNP at average degree 8,
// seeded random metric, uniform quota 3); seeds and iteration counts
// are fixed in code, so the workload columns (nodes, edges, matched,
// weight) are bit-deterministic across runs and machines — only the
// ns/op column moves with the hardware.
//
// Regression-gate mode: -compare old.json measures fresh rows and
// gates them against the baseline file instead of writing output —
// allocation figures within -tolerance percent, workload metrics
// exactly equal, ns/op report-only unless -ns-tolerance is set (see
// compareRows). Non-zero exit on any regression; `make bench-check`
// wires this into CI. -quick drops the slowest tiers so the gate runs
// in seconds; -workers-sweep measures the *Par rows at several worker
// counts (their workload output must be identical at every count).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/tournament"
	"overlaymatch/internal/workload"
)

// Row is one benchmark measurement. Workers is 0 for serial rows and
// the sweep point for *Par rows (omitted in JSON when 0, keeping
// pre-sweep baseline files parseable under the same schema).
type Row struct {
	Name        string             `json:"name"`
	N           int                `json:"n"`
	Phase       string             `json:"phase"`
	Workers     int                `json:"workers,omitempty"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the persisted trajectory.
type File struct {
	Command string `json:"command"`
	Note    string `json:"note"`
	Rows    []Row  `json:"rows"`
}

// benchSystem mirrors the workload of the root bench_test.go harness.
func benchSystem(seed uint64, n int, bq int) *pref.System {
	src := rng.New(seed)
	p := 8.0 / float64(n-1)
	g := gen.GNP(src, n, p)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(bq))
	if err != nil {
		panic(err)
	}
	return s
}

// measure times iters runs of fn after one untimed warm-up, reporting
// per-op wall clock and allocation figures from runtime.MemStats.
func measure(iters int, fn func()) (nsPerOp, bPerOp, allocsPerOp float64) {
	fn() // warm-up: lazily-built caches must not bill the first iteration
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&m1)
	fi := float64(iters)
	return float64(dt.Nanoseconds()) / fi,
		float64(m1.TotalAlloc-m0.TotalAlloc) / fi,
		float64(m1.Mallocs-m0.Mallocs) / fi
}

// runBenchmarks measures the full row set. sweep is the worker counts
// the *Par rows are measured at; quick drops the n=100000 tier and the
// larger LICLiteral size so the regression gate runs in seconds.
func runBenchmarks(phase string, sweep []int, quick bool) []Row {
	var rows []Row
	add := func(name string, n, workers, iters int, metrics map[string]float64, fn func()) {
		ns, b, allocs := measure(iters, fn)
		rows = append(rows, Row{
			Name: name, N: n, Phase: phase, Workers: workers, Iters: iters,
			NsPerOp: ns, BPerOp: b, AllocsPerOp: allocs, Metrics: metrics,
		})
		tag := name
		if workers != 0 {
			tag = fmt.Sprintf("%s/w=%d", name, workers)
		}
		fmt.Printf("%-15s n=%-7d %12.0f ns/op %14.0f B/op %10.1f allocs/op\n",
			tag, n, ns, b, allocs)
	}

	// Table construction and the centralized scan, the two headline
	// targets, at three scales — each serial and with the deterministic
	// parallel layer (the *Par rows; any observable divergence between
	// the two is a hard failure, not a benchmark artifact).
	sizes := []struct{ n, itersTable, itersLIC int }{
		{1_000, 200, 200},
		{10_000, 20, 20},
		{100_000, 5, 5},
	}
	if quick {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		s := benchSystem(uint64(1000+sz.n), sz.n, 3)
		g := s.Graph()
		tbl := satisfaction.NewTable(s)
		m := matching.LIC(s, tbl)
		met := map[string]float64{
			"edges":   float64(g.NumEdges()),
			"matched": float64(m.Size()),
			"weight":  m.Weight(s),
		}
		add("NewTable", sz.n, 0, sz.itersTable, met, func() {
			_ = satisfaction.NewTable(s)
		})
		add("LIC", sz.n, 0, sz.itersLIC, met, func() {
			_ = matching.LIC(s, tbl)
		})
		// The LIC radix sort in isolation (the PR-4 tentpole's parallel
		// target), on the real order keys of this workload.
		ids := make([]graph.EdgeID, g.NumEdges())
		sortMet := map[string]float64{"edges": float64(g.NumEdges())}
		add("LICSort", sz.n, 0, sz.itersLIC, sortMet, func() {
			for i := range ids {
				ids[i] = graph.EdgeID(i)
			}
			matching.SortEdgeIDs(ids, tbl.OrderKeys(), 1)
		})
		for _, workers := range sweep {
			metPar := map[string]float64{
				"edges":   float64(g.NumEdges()),
				"matched": float64(m.Size()),
				"weight":  m.Weight(s),
				"workers": float64(workers),
			}
			add("NewTablePar", sz.n, workers, sz.itersTable, metPar, func() {
				_ = satisfaction.NewTableParallel(s, workers)
			})
			add("LICPar", sz.n, workers, sz.itersLIC, metPar, func() {
				if got := matching.LICParallel(s, tbl, workers); got.Size() != m.Size() {
					panic("benchjson: LICParallel diverged from LIC")
				}
			})
			sortMetPar := map[string]float64{
				"edges":   float64(g.NumEdges()),
				"workers": float64(workers),
			}
			add("LICSortPar", sz.n, workers, sz.itersLIC, sortMetPar, func() {
				for i := range ids {
					ids[i] = graph.EdgeID(i)
				}
				matching.SortEdgeIDs(ids, tbl.OrderKeys(), workers)
			})
		}
		add("PrefBuild", sz.n, 0, max(sz.itersLIC/5, 1), map[string]float64{
			"edges": float64(g.NumEdges()),
		}, func() {
			if _, err := pref.Build(g, pref.NewRandomMetric(rng.New(uint64(3000+sz.n))), pref.UniformQuota(3)); err != nil {
				panic(err)
			}
		})
	}

	// The tournament scoring path (the PR-7 surface): one full bracket
	// over the default scenario suite — instance build, LIC reference,
	// all three probed contenders, ranking. The workload metrics pin the
	// scored outcome (cell count, cumulative messages, matched weight
	// summed over every cell), so any drift in a contender or in the
	// scoring shows up as a metrics failure in the gate, not just a
	// timing delta.
	tSizes := []struct{ n, iters int }{
		{64, 5},
		{256, 2},
	}
	if quick {
		tSizes = tSizes[:1]
	}
	for _, sz := range tSizes {
		specs := workload.DefaultSuite(sz.n)
		algs := tournament.DefaultAlgorithms()
		opts := tournament.Options{Seed: 7}
		ref, err := tournament.RunBracket(specs, algs, opts)
		if err != nil {
			panic(err)
		}
		met := map[string]float64{"scenarios": float64(len(ref))}
		for _, r := range ref {
			for _, c := range r.Cells {
				met["cells"]++
				met["msgs"] += float64(c.Msgs)
				met["weight"] += c.MatchedWeight
			}
		}
		add("Tournament", sz.n, 0, sz.iters, met, func() {
			if _, err := tournament.RunBracket(specs, algs, opts); err != nil {
				panic(err)
			}
		})
	}

	// The churn-survival engine (the PR-8 surface): a fixed membership
	// feed drained through the epoch queue at three budgets — full
	// repair, one-round truncation, and an overload-shedding
	// configuration. The workload metrics pin the engine's outcome
	// (epoch/retry/shed counts, the certified deferred bound, matched
	// size and weight), so a behavioural drift in batching, bounded
	// repair, or shedding fails the gate rather than hiding in timing.
	cSizes := []struct{ n, iters int }{
		{1_000, 10},
		{10_000, 2},
	}
	if quick {
		cSizes = cSizes[:1]
	}
	churnBudgets := []struct {
		label        string
		rounds, shed int
	}{
		{"ChurnFull", 0, 0},
		{"ChurnK1", 1, 0},
		{"ChurnShed", 0, 2},
	}
	for _, sz := range cSizes {
		s := benchSystem(uint64(4000+sz.n), sz.n, 3)
		feed := dynamic.ChurnSpec{Events: 200, LeaveProb: 0.55, MinAlive: sz.n / 4, Rate: 4}
		for _, b := range churnBudgets {
			run := func() *dynamic.Engine {
				eng, err := dynamic.NewEngine(s, dynamic.EngineOptions{
					RepairRounds: b.rounds, ShedDepth: b.shed,
				})
				if err != nil {
					panic(err)
				}
				if _, err := dynamic.RunEngineChurn(eng, feed, uint64(8000+sz.n)); err != nil {
					panic(err)
				}
				return eng
			}
			eng := run()
			o := eng.Overlay()
			met := map[string]float64{
				"epochs":   float64(len(eng.Records())),
				"retries":  float64(eng.TotalRetries()),
				"sheds":    float64(eng.TotalSheds()),
				"deferred": float64(eng.DeferredBound()),
				"matched":  float64(o.Matching().Size()),
				"weight":   o.Matching().Weight(o.System()),
			}
			add(b.label, sz.n, 0, sz.iters, met, func() { run() })
		}
	}

	// The admission scheduler (the PR-10 surface): one LID workload run
	// canonically and with greedy heaviest-frontier admission. The
	// workload metrics pin both the outcome (matched/weight — identical
	// either way, LID ≡ LIC) and the scheduling win itself (msgs,
	// rounds), so losing the greedy message savings fails the gate as a
	// deterministic-metrics drift, not a timing delta.
	schedSizes := []struct{ n, iters int }{
		{1_000, 5},
		{4_000, 2},
	}
	if quick {
		schedSizes = schedSizes[:1]
	}
	for _, sz := range schedSizes {
		s := benchSystem(uint64(5000+sz.n), sz.n, 3)
		tbl := satisfaction.NewTable(s)
		for _, sched := range []struct {
			label string
			spec  lid.SchedulerSpec
		}{
			{"LIDCanonical", lid.SchedulerSpec{Kind: lid.SchedCanonical}},
			{"LIDGreedy", lid.SchedulerSpec{Kind: lid.SchedGreedy}},
		} {
			spec := sched.spec
			run := func() lid.Result {
				res, err := lid.RunEventScheduled(s, tbl, simnet.Options{Seed: 11}, spec)
				if err != nil {
					panic(err)
				}
				return res
			}
			res := run()
			met := map[string]float64{
				"msgs":    float64(res.Stats.TotalSent()),
				"prop":    float64(res.PropMessages),
				"rej":     float64(res.RejMessages),
				"rounds":  res.Stats.FinalTime,
				"matched": float64(res.Matching.Size()),
				"weight":  res.Matching.Weight(s),
			}
			add(sched.label, sz.n, 0, sz.iters, met, func() { run() })
		}
	}

	// The literal Algorithm-2 loop, whose pool handling is the
	// complexity-class target (O(m²) rescans → O(m·Δ) incremental).
	literal := []struct{ n, iters int }{
		{1_000, 5},
		{3_000, 2},
	}
	if quick {
		literal = literal[:1]
	}
	for _, sz := range literal {
		s := benchSystem(uint64(2000+sz.n), sz.n, 3)
		tbl := satisfaction.NewTable(s)
		m := matching.LIC(s, tbl)
		met := map[string]float64{
			"edges":   float64(s.Graph().NumEdges()),
			"matched": float64(m.Size()),
		}
		add("LICLiteral", sz.n, 0, sz.iters, met, func() {
			got := matching.LICLiteral(s, tbl, rng.New(7))
			if !got.Equal(m) {
				panic("benchjson: LICLiteral diverged from LIC")
			}
		})
	}
	return rows
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output file")
	phase := flag.String("phase", "after", "phase tag for the emitted rows (before|after)")
	merge := flag.Bool("merge", true, "keep rows of other phases already in the output file")
	sweepFlag := flag.String("workers-sweep", "8", "comma-separated worker counts for the *Par rows (workload output must be identical at every count)")
	quick := flag.Bool("quick", false, "drop the slowest tiers (n=100000 and LICLiteral n=3000)")
	compare := flag.String("compare", "", "baseline JSON to gate fresh measurements against instead of writing -out; exits 1 on regression")
	tolerance := flag.Float64("tolerance", 25, "allowed regression of allocs_per_op and b_per_op vs -compare, in percent")
	nsTolerance := flag.Float64("ns-tolerance", 0, "allowed ns/op regression in percent; 0 (the default) reports wall clock without gating it, since it is hardware-dependent")
	flag.Parse()

	sweep, err := parseWorkersSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rows := runBenchmarks(*phase, sweep, *quick)

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		var baseline File
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compare, err)
			os.Exit(2)
		}
		adjusted, err := matchBaseline(baseline.Rows, rows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compare, err)
			os.Exit(2)
		}
		failures, notes := compareRows(baseline.Rows, adjusted, *tolerance, *nsTolerance)
		for _, n := range notes {
			fmt.Printf("note: %s\n", n)
		}
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) vs %s\n", len(failures), *compare)
			os.Exit(1)
		}
		fmt.Printf("benchjson: no regressions vs %s (%d fresh rows)\n", *compare, len(rows))
		return
	}

	file := File{
		Command: "go run ./cmd/benchjson (make bench-json)",
		Note:    "fixed seeds and iteration counts; workload columns are deterministic, ns/op is hardware-dependent",
	}
	if *merge {
		if prev, err := os.ReadFile(*out); err == nil {
			var old File
			if err := json.Unmarshal(prev, &old); err == nil {
				for _, r := range old.Rows {
					if r.Phase != *phase {
						file.Rows = append(file.Rows, r)
					}
				}
			}
		}
	}
	file.Rows = append(file.Rows, rows...)
	sort.SliceStable(file.Rows, func(i, j int) bool {
		a, b := file.Rows[i], file.Rows[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Workers != b.Workers {
			return a.Workers < b.Workers
		}
		return a.Phase < b.Phase // "after" sorts before "before"
	})
	buf, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s (%d rows)\n", *out, len(file.Rows))
}
