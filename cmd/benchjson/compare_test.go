package main

import (
	"strings"
	"testing"
)

func mkRow(name string, n, workers int, ns, b, allocs float64, metrics map[string]float64) Row {
	return Row{
		Name: name, N: n, Phase: "after", Workers: workers, Iters: 1,
		NsPerOp: ns, BPerOp: b, AllocsPerOp: allocs, Metrics: metrics,
	}
}

func TestCompareRowsDetectsAllocRegression(t *testing.T) {
	base := []Row{mkRow("LIC", 1000, 0, 100, 1000, 10, nil)}
	// 10 → 20 allocs/op is a 100% regression: past 25% tolerance plus
	// the 2-alloc slack.
	fresh := []Row{mkRow("LIC", 1000, 0, 100, 1000, 20, nil)}
	failures, _ := compareRows(base, fresh, 25, 0)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs_per_op") {
		t.Fatalf("expected one allocs_per_op failure, got %v", failures)
	}
}

func TestCompareRowsRespectsToleranceAndSlack(t *testing.T) {
	base := []Row{
		mkRow("LIC", 1000, 0, 100, 1000, 10, nil),
		mkRow("Sort", 1000, 0, 100, 0, 0, nil), // alloc-free baseline
	}
	fresh := []Row{
		mkRow("LIC", 1000, 0, 500, 1200, 12, nil), // +20% < 25% tolerance; ns 5x not gated
		mkRow("Sort", 1000, 0, 100, 48, 1.5, nil), // within absolute slack (2 allocs / 64 B)
	}
	failures, notes := compareRows(base, fresh, 25, 0)
	if len(failures) != 0 {
		t.Fatalf("expected no failures, got %v", failures)
	}
	var sawNs bool
	for _, n := range notes {
		if strings.Contains(n, "ns/op") {
			sawNs = true
		}
	}
	if !sawNs {
		t.Fatalf("expected an ungated ns/op note, got %v", notes)
	}
}

func TestCompareRowsGatesNsWhenAsked(t *testing.T) {
	base := []Row{mkRow("LIC", 1000, 0, 100, 1000, 10, nil)}
	fresh := []Row{mkRow("LIC", 1000, 0, 500, 1000, 10, nil)}
	failures, _ := compareRows(base, fresh, 25, 50)
	if len(failures) != 1 || !strings.Contains(failures[0], "ns_per_op") {
		t.Fatalf("expected one ns_per_op failure with -ns-tolerance 50, got %v", failures)
	}
}

func TestCompareRowsDetectsWorkloadDrift(t *testing.T) {
	base := []Row{mkRow("LIC", 1000, 0, 100, 1000, 10,
		map[string]float64{"edges": 4000, "matched": 900, "workers": 8})}
	fresh := []Row{mkRow("LIC", 1000, 0, 100, 1000, 10,
		map[string]float64{"matched": 901, "workers": 2})}
	failures, _ := compareRows(base, fresh, 25, 0)
	// "edges" disappeared and "matched" drifted; "workers" is exempt.
	if len(failures) != 2 {
		t.Fatalf("expected 2 failures (missing metric + drift), got %v", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, `"edges" disappeared`) ||
		!strings.Contains(joined, `"matched" changed`) {
		t.Fatalf("unexpected failure set: %v", failures)
	}
	if strings.Contains(joined, "workers") {
		t.Fatalf("the workers sweep label must not be gated: %v", failures)
	}
}

func TestMatchBaselineWorkersFallback(t *testing.T) {
	// Pre-sweep baseline: the Workers column did not exist (0).
	base := []Row{mkRow("LICPar", 1000, 0, 100, 1000, 10, nil)}
	fresh := []Row{
		mkRow("LICPar", 1000, 2, 100, 1000, 10, nil),
		mkRow("LICPar", 1000, 4, 100, 1000, 30, nil), // regressed vs fallback
	}
	adj, err := matchBaseline(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range adj {
		if r.Workers != 0 {
			t.Fatalf("row %d: expected fallback to workers=0, got %d", i, r.Workers)
		}
	}
	failures, _ := compareRows(base, adj, 25, 0)
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs_per_op") {
		t.Fatalf("expected the regressed swept row to fail vs the workers=0 baseline, got %v", failures)
	}

	// A baseline that does carry the swept key must keep the key as-is.
	base2 := []Row{mkRow("LICPar", 1000, 4, 100, 1000, 10, nil)}
	adj2, err := matchBaseline(base2, []Row{mkRow("LICPar", 1000, 4, 100, 1000, 10, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if adj2[0].Workers != 4 {
		t.Fatalf("swept baseline present, key must not be rewritten: got workers=%d", adj2[0].Workers)
	}
}

func TestMatchBaselineNeverCrossesWorkerCounts(t *testing.T) {
	// Regression guard: the baseline family carries explicit worker
	// rows (1 and 2) but not the fresh row's count (8). The old
	// per-key fallback silently gated w=8 against a stray workers=0
	// row of another family era; a swept family must instead leave the
	// unmatched count as an unmatched note.
	base := []Row{
		mkRow("LICPar", 1000, 1, 100, 1000, 10, nil),
		mkRow("LICPar", 1000, 2, 110, 1000, 10, nil),
	}
	fresh := []Row{mkRow("LICPar", 1000, 8, 100, 1000, 500, nil)} // would "regress" if cross-matched
	adj, err := matchBaseline(base, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if adj[0].Workers != 8 {
		t.Fatalf("swept family: fresh w=8 row must keep its key, got workers=%d", adj[0].Workers)
	}
	failures, notes := compareRows(base, adj, 25, 0)
	if len(failures) != 0 {
		t.Fatalf("a worker count the baseline never measured must not gate, got %v", failures)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "no baseline") {
		t.Fatalf("expected an unmatched note for the w=8 row, got %v", notes)
	}
}

func TestMatchBaselineRejectsMixedWorkerFamily(t *testing.T) {
	base := []Row{
		mkRow("LICPar", 1000, 0, 100, 1000, 10, nil),
		mkRow("LICPar", 1000, 1, 100, 1000, 10, nil),
	}
	if _, err := matchBaseline(base, []Row{mkRow("LICPar", 1000, 2, 100, 1000, 10, nil)}); err == nil {
		t.Fatal("a baseline family mixing workers=0 and explicit worker rows must be rejected")
	}
	// Distinct families may use different eras without conflict.
	ok := []Row{
		mkRow("LIC", 1000, 0, 100, 1000, 10, nil),
		mkRow("LICPar", 1000, 1, 100, 1000, 10, nil),
	}
	if _, err := matchBaseline(ok, nil); err != nil {
		t.Fatalf("different families in different sweep eras must be fine: %v", err)
	}
}

func TestCompareRowsMissingRowsAreNotes(t *testing.T) {
	base := []Row{
		mkRow("LIC", 1000, 0, 100, 1000, 10, nil),
		mkRow("LIC", 100000, 0, 100, 1000, 10, nil), // dropped by -quick
	}
	fresh := []Row{
		mkRow("LIC", 1000, 0, 100, 1000, 10, nil),
		mkRow("NewThing", 1000, 0, 100, 1000, 10, nil), // no baseline yet
	}
	failures, notes := compareRows(base, fresh, 25, 0)
	if len(failures) != 0 {
		t.Fatalf("coverage gaps must be notes, not failures: %v", failures)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "not measured") || !strings.Contains(joined, "no baseline") {
		t.Fatalf("expected skip notes on both sides, got %v", notes)
	}
}

func TestParseWorkersSweep(t *testing.T) {
	got, err := parseWorkersSweep("1, 2,4")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseWorkersSweep: got %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "2,-1"} {
		if _, err := parseWorkersSweep(bad); err == nil {
			t.Fatalf("parseWorkersSweep(%q): expected error", bad)
		}
	}
}
