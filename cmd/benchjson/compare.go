package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Absolute slack added on top of the percentage tolerance, so rows
// whose baseline is at or near zero (alloc-free hot paths) don't fail
// on measurement noise of a handful of bytes.
const (
	allocSlack = 2.0
	byteSlack  = 64.0
)

// rowKey identifies a row for baseline matching.
type rowKey struct {
	Name    string
	N       int
	Phase   string
	Workers int
}

// compareRows gates fresh measurements against a baseline file's rows.
// Matching is by (name, n, phase, workers), falling back to workers=0
// so baselines written before the worker-sweep column existed still
// match swept rows. Gated hard (failures):
//
//   - allocs_per_op and b_per_op may not exceed baseline·(1+tol%) plus
//     a small absolute slack — allocation counts are deterministic, so
//     the tolerance only absorbs accounting drift, not real growth;
//   - workload metrics (edges, matched, weight, ...) must be exactly
//     equal — they are bit-deterministic, any drift is a correctness
//     bug, not a perf regression ("workers" is exempt: it names the
//     sweep point, not the workload).
//
// ns_per_op is hardware-dependent: it is gated only when nsTolPct > 0
// and otherwise reported as a note. Baseline rows with no fresh
// counterpart (and vice versa) are notes, never failures, so -quick
// runs can gate against full baselines.
func compareRows(baseline, fresh []Row, tolPct, nsTolPct float64) (failures, notes []string) {
	byKey := make(map[rowKey]Row, len(fresh))
	for _, r := range fresh {
		byKey[rowKey{r.Name, r.N, r.Phase, r.Workers}] = r
	}
	matched := make(map[rowKey]bool, len(fresh))
	for _, old := range baseline {
		key := rowKey{old.Name, old.N, old.Phase, old.Workers}
		cur, ok := byKey[key]
		if !ok {
			notes = append(notes, fmt.Sprintf("baseline row %s not measured (skipped)", keyString(key)))
			continue
		}
		matched[key] = true
		label := keyString(key)
		gate := func(metric string, oldV, newV, slack float64) {
			limit := oldV*(1+tolPct/100) + slack
			if newV > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %s regressed %.1f -> %.1f (limit %.1f at %.0f%% tolerance)",
					label, metric, oldV, newV, limit, tolPct))
			}
		}
		gate("allocs_per_op", old.AllocsPerOp, cur.AllocsPerOp, allocSlack)
		gate("b_per_op", old.BPerOp, cur.BPerOp, byteSlack)
		if nsTolPct > 0 {
			gate("ns_per_op", old.NsPerOp, cur.NsPerOp, 0)
		} else if old.NsPerOp > 0 {
			notes = append(notes, fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%, not gated)",
				label, old.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp-old.NsPerOp)/old.NsPerOp))
		}
		for _, name := range sortedMetricNames(old.Metrics) {
			if name == "workers" {
				continue
			}
			newV, has := cur.Metrics[name]
			if !has {
				failures = append(failures, fmt.Sprintf("%s: metric %q disappeared", label, name))
				continue
			}
			if newV != old.Metrics[name] {
				failures = append(failures, fmt.Sprintf(
					"%s: deterministic metric %q changed %g -> %g — workload drift, not a perf delta",
					label, name, old.Metrics[name], newV))
			}
		}
	}
	for _, r := range fresh {
		key := rowKey{r.Name, r.N, r.Phase, r.Workers}
		if !matched[key] {
			notes = append(notes, fmt.Sprintf("new row %s has no baseline (skipped)", keyString(key)))
		}
	}
	return failures, notes
}

// famKey identifies a row family — a benchmark shape independent of
// the worker-sweep point.
type famKey struct {
	Name  string
	N     int
	Phase string
}

// matchBaseline rewrites fresh rows' lookup keys for pre-sweep
// baselines: when a (name, n, phase) family predates the worker-sweep
// column — the baseline carries only workers=0 rows for it — fresh
// swept rows gate against the workers=0 row. A family whose baseline
// carries explicit worker counts keeps exact matching: a sweep row
// for a worker count the baseline never measured must surface as an
// unmatched note, never silently gate against another count's
// figures. A baseline family mixing workers=0 with explicit counts is
// ambiguous (hand-edited, or merged across sweep eras) and is
// rejected outright rather than guessed at.
func matchBaseline(baseline, fresh []Row) ([]Row, error) {
	zero := make(map[famKey]bool)
	swept := make(map[famKey]bool)
	for _, r := range baseline {
		fam := famKey{r.Name, r.N, r.Phase}
		if r.Workers == 0 {
			zero[fam] = true
		} else {
			swept[fam] = true
		}
	}
	for fam := range zero {
		if swept[fam] {
			return nil, fmt.Errorf("benchjson: baseline family %s/n=%d mixes workers=0 and explicit worker rows — ambiguous baseline, refusing to guess", fam.Name, fam.N)
		}
	}
	out := make([]Row, len(fresh))
	for i, r := range fresh {
		out[i] = r
		fam := famKey{r.Name, r.N, r.Phase}
		if r.Workers != 0 && !swept[fam] && zero[fam] {
			out[i].Workers = 0
		}
	}
	return out, nil
}

func keyString(k rowKey) string {
	s := fmt.Sprintf("%s/n=%d", k.Name, k.N)
	if k.Workers != 0 {
		s += "/w=" + strconv.Itoa(k.Workers)
	}
	if k.Phase != "" && k.Phase != "after" {
		s += "/" + k.Phase
	}
	return s
}

func sortedMetricNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// parseWorkersSweep parses the -workers-sweep flag ("1,2,4").
func parseWorkersSweep(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("benchjson: bad -workers-sweep entry %q", f)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchjson: -workers-sweep is empty")
	}
	return out, nil
}
