// Command experiments regenerates the validation suite of DESIGN.md §3
// / EXPERIMENTS.md: one experiment per theorem/lemma of the paper plus
// the scaling studies. Each experiment prints one or more tables;
// violations of a proven bound abort with a non-zero exit.
//
// Examples:
//
//	experiments -run all
//	experiments -run E1,E3 -seed 7
//	experiments -run all -quick -md -out results.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"overlaymatch/internal/experiments"
)

func main() {
	var (
		run     = flag.String("run", "all", `comma-separated experiment IDs (e.g. "E1,E5") or "all"`)
		seed    = flag.Uint64("seed", 1, "master seed for all workloads")
		quick   = flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		md      = flag.Bool("md", false, "emit Markdown instead of aligned text")
		out     = flag.String("out", "", "write to file instead of stdout")
		csv     = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "parallel workers for oracle sweeps (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}
	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fail("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		if err := experiments.RunAndRender(e, cfg, w, *md); err != nil {
			fail("%v", err)
		}
		if *csv != "" {
			files, err := experiments.RunToCSV(e, cfg, *csv)
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s csv: %s\n", e.ID, strings.Join(files, " "))
		}
		fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "experiments: suite done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
