// Command experiments regenerates the validation suite of DESIGN.md §3
// / EXPERIMENTS.md: one experiment per theorem/lemma of the paper plus
// the scaling studies. Each experiment prints one or more tables;
// violations of a proven bound abort with a non-zero exit.
//
// Examples:
//
//	experiments -run all
//	experiments -run E1,E3 -seed 7
//	experiments -run all -quick -md -out results.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/experiments"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/metrics"
)

func main() {
	var (
		run     = flag.String("run", "all", `comma-separated experiment IDs (e.g. "E1,E5") or "all"`)
		seed    = flag.Uint64("seed", 1, "master seed for all workloads")
		quick   = flag.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		md      = flag.Bool("md", false, "emit Markdown instead of aligned text")
		out     = flag.String("out", "", "write to file instead of stdout")
		csv     = flag.String("csv", "", "also write each table as CSV into this directory")
		workers = flag.Int("workers", 0, "parallel workers for oracle sweeps and the dense-core builds (0 = GOMAXPROCS; output is bit-identical for any value)")
		list    = flag.Bool("list", false, "list available experiments and exit")
		metOut  = flag.Bool("metrics", false, "print the suite's aggregated metric snapshot to stderr")
		metFmt  = flag.String("metrics-format", "text", "metric snapshot format: text | json | prom")
		manOut  = flag.String("manifest", "", "write a run manifest (params, go version, timings, metrics) as JSON to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faultsF = flag.String("faults", "off", "fault-injection spec threaded into the message-level experiments (see internal/faults)")
		faultSd = flag.Uint64("faults-seed", 0, "seed of the injection streams (0 = derive from -seed)")
		rto     = flag.Float64("rto", 30, "retransmission timeout of the transport-backed experiments (E11, E15), virtual time units")
		adapt   = flag.Bool("adaptive-rto", false, "RFC-6298 adaptive retransmission timeout in the transport-backed experiments")
		detStr  = flag.String("detector", "", "failure-detector spec for the self-healing experiment (E16): on | hb=5,phi=8,... (empty = default)")
		hbInt   = flag.Float64("hb-interval", 0, "override E16's heartbeat interval (virtual time units)")
		phiThr  = flag.Float64("phi-threshold", 0, "override E16's phi suspicion threshold")
		probeIv = flag.Float64("probe-interval", 0, "virtual-time spacing of the stability probes (E17); 0 = one probe per unit-latency round")
		churnF  = flag.String("churn", "off", `churn feed of the churn-survival experiment (E19): "events=200,leave=0.5,minalive=8,rate=2" (off = E19's built-in feed)`)
		repairK = flag.Int("repair-rounds", 0, "repair budget of E19's truncated rows (0 = sweep {1,2,4})")
		shedD   = flag.Int("shed-depth", 0, "shedding threshold of E19's overload row (0 = default 2)")
	)
	flag.Parse()

	if *rto <= 0 {
		fail("-rto must be positive, got %v (the retransmission timer would never fire)", *rto)
	}
	if *hbInt < 0 || *phiThr < 0 {
		fail("-hb-interval and -phi-threshold must be positive")
	}
	if *probeIv < 0 {
		fail("-probe-interval must be non-negative")
	}

	switch *metFmt {
	case "text", "json", "prom":
	default:
		fail("unknown -metrics-format %q", *metFmt)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fail("memprofile: %v", err)
			}
		}()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}

	if *repairK < 0 || *shedD < 0 {
		fail("-repair-rounds and -shed-depth must be non-negative")
	}
	churnSpec, err := dynamic.ParseChurnSpec(*churnF)
	if err != nil {
		fail("%v", err)
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers,
		RTO: *rto, AdaptiveRTO: *adapt, ProbeInterval: *probeIv,
		Churn: churnSpec, RepairRounds: *repairK, ShedDepth: *shedD}
	if *detStr != "" || *hbInt > 0 || *phiThr > 0 {
		det, err := detector.Parse(*detStr)
		if err != nil {
			fail("%v", err)
		}
		if !det.Enabled() && (*hbInt > 0 || *phiThr > 0) {
			det = detector.Default()
		}
		if *hbInt > 0 {
			det.Interval = *hbInt
		}
		if *phiThr > 0 {
			det.Phi = *phiThr
		}
		if det.Enabled() {
			if err := det.Validate(); err != nil {
				fail("%v", err)
			}
		}
		cfg.Detector = &det
	}
	if *faultsF != "" && *faultsF != "off" {
		spec, err := faults.Parse(*faultsF)
		if err != nil {
			fail("%v", err)
		}
		cfg.Faults = &spec
		cfg.FaultsSeed = *faultSd
		if cfg.FaultsSeed == 0 {
			cfg.FaultsSeed = *seed ^ 0x5fa715ca11edc0de
		}
	}
	if *metOut || *manOut != "" {
		cfg.Metrics = metrics.New()
	}
	var selected []experiments.Experiment
	if *run == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.Lookup(id)
			if !ok {
				fail("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	manifest := experiments.NewManifest(cfg)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		if err := experiments.RunAndRender(e, cfg, w, *md); err != nil {
			fail("%v", err)
		}
		if *csv != "" {
			files, err := experiments.RunToCSV(e, cfg, *csv)
			if err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "experiments: %s csv: %s\n", e.ID, strings.Join(files, " "))
		}
		manifest.Record(e, time.Since(t0))
		fmt.Fprintf(os.Stderr, "experiments: %s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "experiments: suite done in %v\n", time.Since(start).Round(time.Millisecond))

	if *metOut {
		if err := cfg.Metrics.Snapshot().WriteFormat(os.Stderr, *metFmt); err != nil {
			fail("metrics: %v", err)
		}
	}
	if *manOut != "" {
		f, err := os.Create(*manOut)
		if err != nil {
			fail("%v", err)
		}
		if err := manifest.Write(f, cfg.Metrics); err != nil {
			f.Close()
			fail("manifest: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote manifest to %s\n", *manOut)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
