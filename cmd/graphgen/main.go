// Command graphgen generates overlay topologies and writes them in the
// textual edge-list format (or JSON), so experiments can be re-run on
// frozen inputs and external tools can consume the same graphs.
//
// Examples:
//
//	graphgen -topology gnp -n 1000 -p 0.01 -seed 7 -out overlay.edges
//	graphgen -topology ba -n 500 -m 3 -format json
//	graphgen -topology geometric -n 200 -radius 0.1 -stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

func main() {
	var (
		topology = flag.String("topology", "gnp", "gnp | gnm | geometric | ba | ws | ring | grid | complete | star | tree")
		n        = flag.Int("n", 100, "number of nodes")
		p        = flag.Float64("p", 0.05, "edge probability (gnp)")
		mEdges   = flag.Int("edges", 200, "edge count (gnm)")
		radius   = flag.Float64("radius", 0.15, "radius (geometric)")
		mAttach  = flag.Int("m", 3, "attachments (ba)")
		k        = flag.Int("k", 6, "lattice degree (ws)")
		beta     = flag.Float64("beta", 0.2, "rewiring probability (ws)")
		rows     = flag.Int("rows", 10, "rows (grid)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		format   = flag.String("format", "edgelist", "edgelist | json | workload (graph + preferences)")
		metric   = flag.String("metric", "random", "preference metric for -format workload (random | symmetric | resource)")
		quota    = flag.Int("b", 3, "connection quota for -format workload")
		out      = flag.String("out", "", "output file (default stdout)")
		showStat = flag.Bool("stats", false, "print degree statistics to stderr")
		spansOut = flag.String("spans", "", "write a span trace of the generation pipeline to this file")
		spansFmt = flag.String("spans-format", "tree", "span trace format: ndjson | chrome | tree")
	)
	flag.Parse()

	switch *spansFmt {
	case "ndjson", "chrome", "tree":
	default:
		fail("unknown -spans-format %q", *spansFmt)
	}
	// The pipeline trace uses a standalone single-node recorder: no
	// virtual clock exists here, so spans carry time 0 and the Lamport
	// stamps order the phases.
	var rec *obs.Recorder
	if *spansOut != "" {
		rec = obs.NewRecorder(1)
	}
	phase := func(kind, detail string) obs.SpanID {
		return rec.OpenSpan(0, kind, detail, 0)
	}

	src := rng.New(*seed)
	var g *graph.Graph
	genSpan := phase("graphgen.generate", fmt.Sprintf("topology=%s n=%d seed=%d", *topology, *n, *seed))
	switch *topology {
	case "gnp":
		g = gen.GNP(src, *n, *p)
	case "gnm":
		g = gen.GNM(src, *n, *mEdges)
	case "geometric":
		g, _ = gen.Geometric(src, *n, *radius)
	case "ba":
		g = gen.BarabasiAlbert(src, *n, *mAttach)
	case "ws":
		g = gen.WattsStrogatz(src, *n, *k, *beta)
	case "ring":
		g = gen.Ring(*n)
	case "grid":
		cols := (*n + *rows - 1) / *rows
		g = gen.Grid(*rows, cols)
	case "complete":
		g = gen.Complete(*n)
	case "star":
		g = gen.Star(*n)
	case "tree":
		g = gen.RandomTree(src, *n)
	default:
		fail("unknown topology %q", *topology)
	}
	rec.CloseSpan(0, genSpan, fmt.Sprintf("m=%d", g.NumEdges()), 0)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}

	writeSpan := phase("graphgen.write", "format="+*format)
	switch *format {
	case "edgelist":
		if err := graph.WriteEdgeList(w, g); err != nil {
			fail("%v", err)
		}
	case "json":
		enc := json.NewEncoder(w)
		if err := enc.Encode(g); err != nil {
			fail("%v", err)
		}
	case "workload":
		prefSpan := phase("graphgen.prefs", fmt.Sprintf("metric=%s b=%d", *metric, *quota))
		var m pref.Metric
		switch *metric {
		case "random":
			m = pref.NewRandomMetric(src)
		case "symmetric":
			m = pref.NewSymmetricRandomMetric(src)
		case "resource":
			capacity := make([]float64, g.NumNodes())
			for i := range capacity {
				capacity[i] = src.Float64()
			}
			m = pref.ResourceMetric{Capacity: capacity}
		default:
			fail("unknown metric %q", *metric)
		}
		sys, err := pref.Build(g, m, pref.UniformQuota(*quota))
		if err != nil {
			fail("%v", err)
		}
		rec.CloseSpan(0, prefSpan, "built", 0)
		if err := pref.WriteJSON(w, sys); err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown format %q", *format)
	}
	rec.CloseSpan(0, writeSpan, "", 0)

	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fail("%v", err)
		}
		if err := rec.WriteFormat(f, *spansFmt); err != nil {
			f.Close()
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote span trace (%s, %d events) to %s\n",
			*spansFmt, rec.Len(), *spansOut)
	}

	if *showStat {
		comps := g.Components()
		fmt.Fprintf(os.Stderr, "graphgen: n=%d m=%d avg-degree=%.2f min=%d max=%d components=%d\n",
			g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.MinDegree(), g.MaxDegree(), len(comps))
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
