package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overlaymatch/internal/tournament"
	"overlaymatch/internal/workload"
)

func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestListFlag(t *testing.T) {
	out, _, code := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range append(workload.Families(), "lid", "gs", "bp") {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output misses %q:\n%s", want, out)
		}
	}
}

func TestDefaultSuiteRun(t *testing.T) {
	out, errb, code := runCLI(t, "-n", "32", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	for _, fam := range workload.Families() {
		if !strings.Contains(out, fam) {
			t.Fatalf("output misses family %q", fam)
		}
	}
	if !strings.Contains(out, "podium") {
		t.Fatal("summary table missing")
	}
}

func TestExplicitScenariosAndArtifacts(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bracket.json")
	outPath := filepath.Join(dir, "tables.md")
	_, errb, code := runCLI(t,
		"-scenarios", "swarm:n=32,zipf=1.4/master:n=24",
		"-seed", "9", "-workers", "2", "-md",
		"-out", outPath, "-json", jsonPath, "-csv", dir)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	tablesMD, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tablesMD), "|") {
		t.Fatal("-md output is not markdown")
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var cells []tournament.Cell
	if err := json.Unmarshal(raw, &cells); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(tournament.DefaultAlgorithms()) {
		t.Fatalf("%d cells for 2 scenarios", len(cells))
	}
	for _, c := range cells {
		if c.Rank < 1 || c.Msgs <= 0 || len(c.RoundsToEps) == 0 {
			t.Fatalf("cell %s/%s unscored: %+v", c.Scenario, c.Algorithm, c)
		}
	}
	for _, name := range []string{"tournament_1.csv", "tournament_2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("csv artifact missing: %v", err)
		}
	}
}

// TestCLIDeterministicAcrossWorkers: the rendered tables are
// byte-identical for any -workers value — the CLI inherits the
// bracket's schedule-freedom.
func TestCLIDeterministicAcrossWorkers(t *testing.T) {
	base, _, code := runCLI(t, "-n", "24", "-seed", "11", "-workers", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, w := range []string{"2", "4"} {
		out, _, code := runCLI(t, "-n", "24", "-seed", "11", "-workers", w)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d", w, code)
		}
		if out != base {
			t.Fatalf("output differs between -workers 1 and -workers %s", w)
		}
	}
}

func TestBadFlagsAndSpecs(t *testing.T) {
	if _, _, code := runCLI(t, "-scenarios", "nosuchfamily"); code != 2 {
		t.Fatalf("unknown family: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-scenarios", "swarm:radius=2"); code != 2 {
		t.Fatalf("inapplicable key: exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "-probe-interval", "-1"); code != 2 {
		t.Fatalf("negative probe interval: exit %d, want 2", code)
	}
	if _, errb, code := runCLI(t, "-scenarios", "   /  "); code != 2 || !strings.Contains(errb, "no scenarios") {
		t.Fatalf("empty list: exit %d (%s)", code, errb)
	}
}
