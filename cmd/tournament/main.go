// Command tournament runs the stability tournament: the contenders of
// internal/tournament (LID, distributed Gale–Shapley, one-round backup
// placement) bracketed over production-shaped workload scenarios, each
// cell scored with the stability yardsticks of the telemetry plane —
// matched-weight fraction of the LIC optimum, blocking pairs under the
// eq.-9 weight order, rounds-to-ε, and message/byte cost.
//
// Scenarios are named in the internal/workload grammar, so a CLI run, a
// bracket cell of experiment E18 and a replay file all name the same
// instance the same way. Everything is deterministic given (-scenarios,
// -seed) and bit-identical for any -workers value.
//
// Examples:
//
//	tournament
//	tournament -scenarios swarm:n=512,zipf=1.4 -seed 7 -md
//	tournament -n 128 -json bracket.json -csv out/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"overlaymatch/internal/obs"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/tournament"
	"overlaymatch/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tournament", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenarios = fs.String("scenarios", "default", `"/"-separated workload specs ("swarm:n=512,zipf=1.4/geo:n=512") or "default" for one defaulted spec per family`)
		n         = fs.Int("n", 256, "node count of the default suite (ignored when -scenarios is explicit)")
		seed      = fs.Uint64("seed", 1, "master seed; each scenario's instance seed derives from it and the canonical spec string")
		workers   = fs.Int("workers", 0, "parallel workers for the deterministic builds (0 = 1; output is bit-identical for any value)")
		probeIv   = fs.Float64("probe-interval", 0, "virtual-time spacing of the stability probes (0 = one per unit-latency round)")
		md        = fs.Bool("md", false, "emit Markdown instead of aligned text")
		out       = fs.String("out", "", "write the tables to this file instead of stdout")
		jsonOut   = fs.String("json", "", "write every scored cell as a JSON array to this file")
		csvDir    = fs.String("csv", "", "also write each table as CSV into this directory")
		list      = fs.Bool("list", false, "list the scenario families and contenders, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *probeIv < 0 {
		fmt.Fprintln(stderr, "tournament: -probe-interval must be non-negative")
		return 2
	}
	if *list {
		fmt.Fprintf(stdout, "scenario families: %s\n", strings.Join(workload.Families(), " "))
		var names []string
		for _, alg := range tournament.DefaultAlgorithms() {
			names = append(names, alg.Name())
		}
		fmt.Fprintf(stdout, "contenders:        %s\n", strings.Join(names, " "))
		return 0
	}

	specs, err := parseScenarios(*scenarios, *n)
	if err != nil {
		fmt.Fprintf(stderr, "tournament: %v\n", err)
		return 2
	}
	results, err := tournament.RunBracket(specs, tournament.DefaultAlgorithms(), tournament.Options{
		Seed:          *seed,
		Workers:       *workers,
		ProbeInterval: *probeIv,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tournament: %v\n", err)
		return 1
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tournament: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	tables := renderTables(results)
	for _, t := range tables {
		if *md {
			err = t.WriteMarkdown(w)
		} else {
			err = t.WriteText(w)
		}
		if err == nil {
			_, err = fmt.Fprintln(w)
		}
		if err != nil {
			fmt.Fprintf(stderr, "tournament: %v\n", err)
			return 1
		}
	}
	if *csvDir != "" {
		if err := writeCSVs(tables, *csvDir); err != nil {
			fmt.Fprintf(stderr, "tournament: %v\n", err)
			return 1
		}
	}
	if *jsonOut != "" {
		if err := writeCells(results, *jsonOut); err != nil {
			fmt.Fprintf(stderr, "tournament: %v\n", err)
			return 1
		}
	}
	return 0
}

// parseScenarios resolves the -scenarios flag: the default suite at
// size n, or one spec per comma-separated grammar string.
func parseScenarios(in string, n int) ([]workload.Spec, error) {
	if in == "default" {
		return workload.DefaultSuite(n), nil
	}
	var specs []workload.Spec
	for _, entry := range splitSpecList(in) {
		spec, err := workload.Parse(entry)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no scenarios in %q", in)
	}
	return specs, nil
}

// splitSpecList splits a scenario list on "/" (and surrounding space),
// keeping the workload grammar's internal commas intact:
//
//	swarm:n=128,zipf=1.4/geo:n=128
func splitSpecList(in string) []string {
	var out []string
	for _, part := range strings.Split(in, "/") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

// renderTables builds the bracket and podium tables from ranked
// results — the same two shapes experiment E18 emits.
func renderTables(results []tournament.ScenarioResult) []*stats.Table {
	bracket := stats.NewTable("stability tournament (ranked per scenario)",
		"scenario", "alg", "rank", "weight frac", "blocking pairs", "unmatched",
		"eps=0.01", "eps=0", "msgs", "bytes", "final t")
	summary := stats.NewTable("per-scenario podium",
		"scenario", "spec", "n", "edges", "winner", "weight fracs (lid/gs/bp)")
	for _, r := range results {
		frac := map[string]string{}
		for _, c := range r.Cells {
			frac[c.Algorithm] = fmt.Sprintf("%.4f", c.WeightFrac)
			// Read through obs.SummaryValue: a missing rung renders as
			// the NeverConverged sentinel, never as zero.
			bracket.AddRowf(c.Scenario, c.Algorithm, c.Rank,
				fmt.Sprintf("%.4f", c.WeightFrac), c.BlockingPairs, c.Unmatched,
				obs.SummaryValue(c.RoundsToEps, 0.01), obs.SummaryValue(c.RoundsToEps, 0),
				c.Msgs, c.Bytes, c.FinalTime)
		}
		win := r.Cells[0]
		summary.AddRowf(win.Scenario, r.Spec.String(), win.N, win.Edges, win.Algorithm,
			frac["lid"]+"/"+frac["gs"]+"/"+frac["bp"])
	}
	return []*stats.Table{bracket, summary}
}

// writeCSVs writes each table as "tournament_<k>.csv" under dir.
func writeCSVs(tables []*stats.Table, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for k, t := range tables {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("tournament_%d.csv", k+1)))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeCells flattens the ranked cells into one JSON array — the
// machine-readable bracket.
func writeCells(results []tournament.ScenarioResult, path string) error {
	var cells []tournament.Cell
	for _, r := range results {
		cells = append(cells, r.Cells...)
	}
	raw, err := json.MarshalIndent(cells, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
