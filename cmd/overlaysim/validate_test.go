package main

import (
	"strings"
	"testing"
)

// baseFlags returns a flag set that validates cleanly; cases mutate it.
func baseFlags() cliFlags {
	return cliFlags{
		runtime:     "event",
		rto:         30,
		detector:    "off",
		faults:      "off",
		spansFormat: "ndjson",
		traceFormat: "log",
		metricsFmt:  "text",
		churn:       "off",
		scheduler:   "canonical",
	}
}

func TestValidateFlagsInteractionMatrix(t *testing.T) {
	churn := "events=50,leave=0.5,minalive=4,rate=2"
	cases := []struct {
		name    string
		mutate  func(*cliFlags)
		wantErr string // substring; "" = must validate
	}{
		{"defaults", func(f *cliFlags) {}, ""},
		{"unknown runtime", func(f *cliFlags) { f.runtime = "quantum" }, "unknown runtime"},
		{"bad rto", func(f *cliFlags) { f.rto = 0 }, "-rto"},
		{"adaptive rto without reliable", func(f *cliFlags) { f.adaptiveRTO = true }, "-adaptive-rto"},
		{"negative hb interval", func(f *cliFlags) { f.hbInterval = -1 }, "-hb-interval"},
		{"lossy faults without reliable", func(f *cliFlags) { f.faults = "drop=0.1" }, "needs -reliable"},
		{"lossy faults with reliable", func(f *cliFlags) { f.faults = "drop=0.1"; f.reliable = true }, ""},
		{"centralized with reliable", func(f *cliFlags) { f.runtime = "centralized"; f.reliable = true }, "distributed runtime"},
		{"centralized with detector", func(f *cliFlags) { f.runtime = "centralized"; f.detector = "on" }, "distributed runtime"},

		// The udp interaction matrix: every simulator-only hook must be
		// rejected explicitly, the way bare udp without -reliable is.
		{"udp without reliable", func(f *cliFlags) { f.runtime = "udp" }, "needs -reliable"},
		{"udp ok", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true }, ""},
		{"udp with faults", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true; f.faults = "dup=0.1" }, "no such hook"},
		{"udp with tracelog", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true; f.tracelog = "t.log" }, "simulated runtime"},
		{"udp with trace spans", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true; f.traceSpans = "s.ndjson" }, "simulated runtime"},
		{"udp with probes", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true; f.probeInt = 5 }, "needs -runtime event"},
		{"udp with churn", func(f *cliFlags) { f.runtime = "udp"; f.churn = churn }, "drop -runtime udp"},
		{"udp with greedy scheduler", func(f *cliFlags) { f.runtime = "udp"; f.reliable = true; f.scheduler = "greedy" }, "needs -runtime event"},

		{"probe on goroutine", func(f *cliFlags) { f.runtime = "goroutine"; f.probeInt = 2 }, "needs -runtime event"},
		{"negative probe interval", func(f *cliFlags) { f.probeInt = -1 }, "non-negative"},
		{"spans on centralized", func(f *cliFlags) { f.runtime = "centralized"; f.traceSpans = "s" }, "distributed runtime"},
		{"bad spans format", func(f *cliFlags) { f.spansFormat = "xml" }, "-trace-spans-format"},
		{"bad trace format", func(f *cliFlags) { f.traceFormat = "yaml" }, "-traceformat"},
		{"bad metrics format", func(f *cliFlags) { f.metricsFmt = "csv" }, "-metrics-format"},

		// The -churn audit: the engine replaces the distributed sim, so
		// a non-default runtime is a contradiction, not a no-op. Before
		// PR 10 goroutine/centralized were silently ignored.
		{"churn ok", func(f *cliFlags) { f.churn = churn }, ""},
		{"churn with goroutine runtime", func(f *cliFlags) { f.churn = churn; f.runtime = "goroutine" }, "drop -runtime goroutine"},
		{"churn with centralized runtime", func(f *cliFlags) { f.churn = churn; f.runtime = "centralized" }, "drop -runtime centralized"},
		{"churn with faults", func(f *cliFlags) { f.churn = churn; f.faults = "dup=0.1" }, "incompatible"},
		{"churn with reliable", func(f *cliFlags) { f.churn = churn; f.reliable = true }, "incompatible"},
		{"churn knobs without churn", func(f *cliFlags) { f.repairRounds = 2 }, "need -churn"},
		{"negative shed depth", func(f *cliFlags) { f.shedDepth = -1 }, "non-negative"},

		{"greedy scheduler ok", func(f *cliFlags) { f.scheduler = "greedy" }, ""},
		{"greedy batch ok", func(f *cliFlags) { f.scheduler = "greedy:batch=4" }, ""},
		{"greedy with reliable", func(f *cliFlags) { f.scheduler = "greedy"; f.reliable = true }, ""},
		{"bad scheduler", func(f *cliFlags) { f.scheduler = "eager" }, "scheduler"},
		{"greedy on goroutine", func(f *cliFlags) { f.scheduler = "greedy"; f.runtime = "goroutine" }, "needs -runtime event"},
		{"greedy on centralized", func(f *cliFlags) { f.scheduler = "greedy"; f.runtime = "centralized" }, "needs -runtime event"},
		{"greedy with churn", func(f *cliFlags) { f.scheduler = "greedy"; f.churn = churn }, "no effect under -churn"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := baseFlags()
			c.mutate(&f)
			_, err := validateFlags(f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("expected valid, got: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestValidateFlagsParsesScheduler(t *testing.T) {
	f := baseFlags()
	f.scheduler = "greedy:batch=3"
	cfg, err := validateFlags(f)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.sched.Greedy() || cfg.sched.Batch != 3 {
		t.Fatalf("scheduler spec not threaded through: %+v", cfg.sched)
	}
}
