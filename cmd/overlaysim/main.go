// Command overlaysim runs one overlay-matching simulation end to end
// and prints a human-readable report: the topology, the preference
// metric, whether the preference system is acyclic, the distributed
// run's message/round statistics, and the satisfaction the peers
// achieved (with the Theorem-3 guarantee for reference).
//
// Examples:
//
//	overlaysim -topology gnp -n 200 -p 0.05 -b 3 -metric random
//	overlaysim -topology geometric -n 500 -radius 0.08 -metric distance -runtime goroutine
//	overlaysim -topology ba -n 300 -m 4 -b 2 -metric transactions -jitter 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/obs"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/trace"
	"overlaymatch/internal/transport"
)

func main() {
	var (
		topology = flag.String("topology", "gnp", "gnp | geometric | ba | ws | ring | grid | complete | tree")
		n        = flag.Int("n", 100, "number of peers")
		p        = flag.Float64("p", 0.05, "edge probability (gnp)")
		radius   = flag.Float64("radius", 0.15, "connection radius (geometric)")
		mAttach  = flag.Int("m", 3, "attachments per node (ba)")
		k        = flag.Int("k", 6, "lattice degree (ws, even)")
		beta     = flag.Float64("beta", 0.2, "rewiring probability (ws)")
		rows     = flag.Int("rows", 10, "rows (grid)")
		quota    = flag.Int("b", 3, "connection quota per peer")
		metric   = flag.String("metric", "random", "random | symmetric | distance | resource | transactions")
		seed     = flag.Uint64("seed", 1, "seed for topology, preferences and latencies")
		runtime_ = flag.String("runtime", "event", "event | goroutine | centralized | udp (loopback real-socket cluster; needs -reliable)")
		jitter   = flag.Float64("jitter", 3, "latency jitter scale (event runtime)")
		workload = flag.String("workload", "", "load a frozen workload JSON (see graphgen -format workload) instead of generating")
		dotOut   = flag.String("dot", "", "write the final overlay as Graphviz DOT to this file")
		traceOut = flag.String("tracelog", "", "write the message trace to this file (event or goroutine runtime)")
		traceFmt = flag.String("traceformat", "log", "trace file format: log | ndjson")
		spansOut = flag.String("trace-spans", "", "write the causal span trace (Lamport clocks, protocol spans) to this file")
		spansFmt = flag.String("trace-spans-format", "ndjson", "span trace format: ndjson | chrome | tree")
		probeInt = flag.Float64("probe-interval", 0, "virtual-time spacing of per-round stability probes (0 = off; event runtime only)")
		metOut   = flag.Bool("metrics", false, "print the run's metric snapshot after the report")
		metFmt   = flag.String("metrics-format", "text", "metric snapshot format: text | json | prom")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		faultStr = flag.String("faults", "off", "fault-injection spec, e.g. drop=0.1,dup=0.05,partition=20:60:0-9 (see internal/faults)")
		faultSd  = flag.Uint64("faults-seed", 0, "seed of the injection stream (0 = derive from -seed)")
		reliab   = flag.Bool("reliable", false, "wrap LID in the ack/retransmit substrate (required for drop/corrupt faults)")
		rto      = flag.Float64("rto", 30, "retransmission timeout in virtual time units (-reliable)")
		adaptRTO = flag.Bool("adaptive-rto", false, "RFC-6298 adaptive retransmission timeout with backoff (-reliable)")
		detStr   = flag.String("detector", "off", "heartbeat failure detector: off | on | hb=5,phi=8,... (see internal/detector)")
		hbInt    = flag.Float64("hb-interval", 0, "heartbeat interval override in virtual time units (implies -detector on)")
		phiThr   = flag.Float64("phi-threshold", 0, "phi suspicion threshold override (implies -detector on)")
		replay   = flag.String("replay", "", "re-execute a frozen replay file (see faults.Explore) and report the verdict")
		workers  = flag.Int("workers", 0, "goroutines for the deterministic parallel weight-table build (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		churnStr = flag.String("churn", "off", `run the churn-survival engine instead of the distributed sim: "events=200,leave=0.5,minalive=8,rate=2" (see internal/dynamic)`)
		repairK  = flag.Int("repair-rounds", 0, "truncate each repair epoch after this many cascade rounds (0 = full budget; needs -churn)")
		shedD    = flag.Int("shed-depth", 0, "shed epochs whose batch exceeds this to one-round backup placement (0 = never; needs -churn)")
		schedStr = flag.String("scheduler", "canonical", "proposal admission order: canonical | greedy | greedy:batch=N (greedy needs -runtime event; same matching, fewer messages)")
		verbose  = flag.Bool("v", false, "print per-peer connections")
	)
	flag.Parse()

	if *replay != "" {
		runReplayFile(*replay)
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			writeFileWith(*memProf, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			})
		}()
	}

	cfg, err := validateFlags(cliFlags{
		runtime:      *runtime_,
		rto:          *rto,
		adaptiveRTO:  *adaptRTO,
		reliable:     *reliab,
		hbInterval:   *hbInt,
		phiThreshold: *phiThr,
		detector:     *detStr,
		faults:       *faultStr,
		tracelog:     *traceOut,
		traceSpans:   *spansOut,
		spansFormat:  *spansFmt,
		traceFormat:  *traceFmt,
		metricsFmt:   *metFmt,
		probeInt:     *probeInt,
		churn:        *churnStr,
		repairRounds: *repairK,
		shedDepth:    *shedD,
		scheduler:    *schedStr,
	})
	if err != nil {
		fail("%v", err)
	}
	fseed := *faultSd
	if fseed == 0 {
		fseed = *seed ^ 0x5fa715ca11edc0de
	}
	opts := reportOpts{seed: *seed, runtime: *runtime_, jitter: *jitter,
		verbose: *verbose, dotPath: *dotOut, tracePath: *traceOut, traceFormat: *traceFmt,
		spansPath: *spansOut, spansFormat: *spansFmt, probeInterval: *probeInt,
		showMetrics: *metOut, metricsFormat: *metFmt,
		faults: cfg.spec, faultsSeed: fseed, reliable: *reliab, rto: *rto,
		adaptiveRTO: *adaptRTO, det: cfg.det, workers: *workers,
		churn: cfg.churn, repairRounds: *repairK, shedDepth: *shedD,
		sched: cfg.sched}

	if *workload != "" {
		runWorkloadFile(*workload, opts)
		return
	}

	src := rng.New(*seed)
	var g *graph.Graph
	var coords [][2]float64
	switch *topology {
	case "gnp":
		g = gen.GNP(src.Split(), *n, *p)
	case "geometric":
		g, coords = gen.Geometric(src.Split(), *n, *radius)
	case "ba":
		g = gen.BarabasiAlbert(src.Split(), *n, *mAttach)
	case "ws":
		g = gen.WattsStrogatz(src.Split(), *n, *k, *beta)
	case "ring":
		g = gen.Ring(*n)
	case "grid":
		cols := (*n + *rows - 1) / *rows
		g = gen.Grid(*rows, cols)
	case "complete":
		g = gen.Complete(*n)
	case "tree":
		g = gen.RandomTree(src.Split(), *n)
	default:
		fail("unknown topology %q", *topology)
	}

	var m pref.Metric
	switch *metric {
	case "random":
		m = pref.NewRandomMetric(src.Split())
	case "symmetric":
		m = pref.NewSymmetricRandomMetric(src.Split())
	case "distance":
		if coords == nil {
			coords = make([][2]float64, g.NumNodes())
			for i := range coords {
				coords[i] = [2]float64{src.Float64(), src.Float64()}
			}
		}
		m = pref.DistanceMetric{Coords: coords}
	case "resource":
		capacity := make([]float64, g.NumNodes())
		for i := range capacity {
			capacity[i] = src.Float64()
		}
		m = pref.ResourceMetric{Capacity: capacity}
	case "transactions":
		hist := make([][]float64, g.NumNodes())
		for i := range hist {
			hist[i] = make([]float64, g.NumNodes())
			for _, j := range g.Neighbors(i) {
				hist[i][j] = src.NormFloat64()
			}
		}
		m = pref.TransactionMetric{History: hist}
	default:
		fail("unknown metric %q", *metric)
	}

	sys, err := pref.Build(g, m, pref.UniformQuota(*quota))
	if err != nil {
		fail("building preferences: %v", err)
	}
	fmt.Printf("overlay: %s, n=%d m=%d, avg degree %.2f (min %d, max %d)\n",
		*topology, g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.MinDegree(), g.MaxDegree())
	fmt.Printf("preferences: metric=%s, quota b=%d\n", *metric, *quota)
	runAndReport(sys, opts)
}

// reportOpts carries the run/report configuration.
type reportOpts struct {
	seed          uint64
	runtime       string
	jitter        float64
	verbose       bool
	dotPath       string
	tracePath     string
	traceFormat   string // log | ndjson
	spansPath     string
	spansFormat   string  // ndjson | chrome | tree
	probeInterval float64 // 0 = probing off
	showMetrics   bool
	metricsFormat string // text | json | prom
	faults        faults.Spec
	faultsSeed    uint64
	reliable      bool
	rto           float64
	adaptiveRTO   bool
	det           detector.Config
	workers       int
	churn         dynamic.ChurnSpec
	repairRounds  int
	shedDepth     int
	sched         lid.SchedulerSpec
}

// policy returns the run's fault-injection policy (nil when -faults is
// off, keeping the run byte-identical to earlier releases).
func (o reportOpts) policy() simnet.LinkPolicy {
	if o.faults.IsZero() {
		return nil
	}
	return faults.NewInjector(o.faults, o.faultsSeed)
}

// runReplayFile re-executes a frozen fault replay (faults.ReplayFile)
// and reports whether the recorded violation reproduces. Exit status:
// 0 when the re-execution is consistent with the file (the recorded
// violation reproduces, or a clean file stays clean), 1 otherwise.
func runReplayFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	rf, err := faults.LoadReplay(f)
	f.Close()
	if err != nil {
		fail("%v", err)
	}
	w := rf.Workload
	fmt.Printf("replay %s: %s n=%d b=%d metric=%s seed=%d, spec %s, %d events, reliable=%v\n",
		path, w.Topology, w.N, w.B, w.Metric, rf.Seed, rf.Spec, len(rf.Events), rf.Reliable)
	if rf.Err != "" {
		fmt.Printf("recorded violation: %s\n", rf.Err)
	}
	out, err := rf.Run()
	if err != nil {
		fail("replay: %v", err)
	}
	switch {
	case out.Violation == "" && rf.Err == "":
		fmt.Println("re-execution: clean (no recorded violation, none reproduced)")
	case out.Violation == "":
		fmt.Println("re-execution: CLEAN — the recorded violation did NOT reproduce")
		os.Exit(1)
	case out.Matches:
		fmt.Printf("re-execution: violation reproduced: %s\n", out.Violation)
	case rf.Err == "":
		fmt.Printf("re-execution: violation found (file recorded none): %s\n", out.Violation)
		os.Exit(1)
	default:
		fmt.Printf("re-execution: DIFFERENT violation: %s\n", out.Violation)
		os.Exit(1)
	}
}

// runWorkloadFile loads a frozen workload and simulates it.
func runWorkloadFile(path string, opts reportOpts) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	sys, err := pref.ReadJSON(f)
	if err != nil {
		fail("%v", err)
	}
	g := sys.Graph()
	fmt.Printf("workload %s: n=%d m=%d, avg degree %.2f\n",
		path, g.NumNodes(), g.NumEdges(), g.AvgDegree())
	runAndReport(sys, opts)
}

// runAndReport executes the selected runtime and prints the report.
func runAndReport(sys *pref.System, opts reportOpts) {
	if !opts.churn.IsZero() {
		runChurnReport(sys, opts)
		return
	}
	seed, runtime_, jitter, verbose := opts.seed, opts.runtime, opts.jitter, opts.verbose
	g := sys.Graph()
	tbl := satisfaction.NewTableParallel(sys, opts.workers)
	var collector trace.Collector
	var traceFn func(simnet.TraceEntry)
	if opts.tracePath != "" {
		traceFn = collector.Record
	}
	var reg *metrics.Registry
	if opts.showMetrics {
		reg = metrics.New()
	}
	var rec *obs.Recorder
	if opts.spansPath != "" {
		rec = obs.NewRecorder(g.NumNodes())
	}
	// The probe series need a registry even when -metrics is off; a
	// private one keeps the report output unchanged in that case.
	var prober *obs.Prober
	probeReg := reg
	if opts.probeInterval > 0 && probeReg == nil {
		probeReg = metrics.New()
	}
	fmt.Printf("acyclic=%v; guarantee: LID achieves >= %.4f of optimal total satisfaction (Theorem 3)\n\n",
		pref.IsAcyclic(sys), satisfaction.Theorem3Bound(maxInt(sys.MaxQuota(), 1)))

	policy := opts.policy()
	var inj *faults.Injector
	if in, ok := policy.(*faults.Injector); ok {
		inj = in
	}
	var eps []*reliable.Endpoint
	var mons []*detector.Monitor
	// wrap stacks the optional layers inside-out: transport below the
	// failure detector, mirroring dlid.RunSelfHeal.
	wrap := func(handlers []simnet.Handler) []simnet.Handler {
		if opts.reliable {
			eps = reliable.WrapConfig(handlers, reliable.Config{RTO: opts.rto, Adaptive: opts.adaptiveRTO})
			handlers = reliable.Handlers(eps)
		}
		if opts.det.Enabled() {
			adj := make([][]int, g.NumNodes())
			for i := range adj {
				adj[i] = g.Neighbors(i)
			}
			mons = detector.Wrap(handlers, adj, opts.det)
			handlers = detector.Handlers(mons)
		}
		return handlers
	}
	reportFaults := func(st simnet.Stats) {
		if inj != nil {
			fmt.Printf("  faults: %s -> %d injections over %d sends\n",
				opts.faults, len(inj.Events()), inj.Sends())
		}
		if eps != nil {
			reliable.PublishMetrics(reg, eps)
			mode := "static"
			if opts.adaptiveRTO {
				mode = "adaptive"
			}
			fmt.Printf("  transport: rto %.1f (%s), %d retransmits, %d duplicates suppressed, %d corrupt discarded\n",
				opts.rto, mode, reliable.TotalRetransmits(eps), reliable.TotalDuplicates(eps), reliable.TotalCorrupted(eps))
		}
		if mons != nil {
			detector.PublishMetrics(reg, mons)
			fmt.Printf("  detector: %s -> %d suspicions, %d restores (%d HB, %d HB-ACK)\n",
				opts.det, detector.TotalSuspicions(mons), detector.TotalRestores(mons),
				st.SentByKind["HB"], st.SentByKind["HB-ACK"])
		}
		_ = st
	}

	var result *matching.Matching
	start := time.Now()
	switch runtime_ {
	case "event":
		var st simnet.Stats
		ropts := simnet.Options{
			Seed:    seed,
			Latency: latency(jitter),
			Trace:   traceFn,
			Metrics: reg,
			Policy:  policy,
			Obs:     rec,
		}
		if opts.reliable || opts.det.Enabled() {
			nodes := lid.NewNodes(sys, tbl)
			if opts.sched.Greedy() {
				// The admitter watches the LID state machines directly, so
				// the reliable/detector wrapping stays transparent to it.
				ropts.Admitter = lid.NewGreedyAdmitter(sys, tbl, nodes, opts.sched)
			}
			// The sampler closes over the runner (for the cumulative send
			// totals), which does not exist until after the options are
			// final — hence the two-step wiring, mirroring RunEventProbed.
			var runner *simnet.Runner
			if opts.probeInterval > 0 {
				optimum := matching.LIC(sys, tbl).Weight(sys)
				sampler := lid.StabilitySampler(sys, tbl, nodes, func() (int64, int64) {
					return runner.SentTotals()
				})
				prober = obs.NewProber(probeReg, opts.probeInterval, g.NumEdges(), optimum, sampler)
				ropts.Probe = prober.Probe
				ropts.ProbeInterval = opts.probeInterval
			}
			runner = simnet.NewRunner(g.NumNodes(), ropts)
			s, err := runner.Run(wrap(lid.Handlers(nodes)))
			if err != nil {
				fail("run: %v", err)
			}
			prober.PublishSummary(probeReg, nil)
			m, err := lid.BuildMatching(nodes)
			if err != nil {
				fail("run: %v", err)
			}
			result, st = m, s
		} else if opts.probeInterval > 0 {
			res, p, err := lid.RunEventProbedScheduled(sys, tbl, ropts, opts.probeInterval, probeReg, opts.sched)
			if err != nil {
				fail("run: %v", err)
			}
			prober = p
			result, st = res.Matching, res.Stats
		} else {
			res, err := lid.RunEventScheduled(sys, tbl, ropts, opts.sched)
			if err != nil {
				fail("run: %v", err)
			}
			result, st = res.Matching, res.Stats
		}
		fmt.Printf("distributed run (event simulator, jitter %.1f, scheduler %s): %v\n",
			jitter, opts.sched, time.Since(start))
		fmt.Printf("  messages: %d total (%d PROP, %d REJ), %.2f per peer, max %d\n",
			st.TotalSent(), st.SentByKind["PROP"], st.SentByKind["REJ"],
			float64(st.TotalSent())/float64(g.NumNodes()), st.MaxSentByNode())
		fmt.Printf("  virtual time to quiescence: %.2f\n", st.FinalTime)
		if prober != nil {
			s := prober.RoundsToEps(nil)
			fmt.Printf("  stability: %d probes every %.1f; rounds to eps 0.1/0.01/0.001/0: %.0f / %.0f / %.0f / %.0f (-1 = never)\n",
				len(prober.Curve()), opts.probeInterval,
				s[obs.EpsKey(0.1)], s[obs.EpsKey(0.01)], s[obs.EpsKey(0.001)], s[obs.EpsKey(0)])
		}
		reportFaults(st)
	case "goroutine":
		var st simnet.Stats
		if opts.reliable || opts.det.Enabled() {
			nodes := lid.NewNodes(sys, tbl)
			runner := simnet.NewGoRunner(g.NumNodes(), 2*time.Minute)
			if traceFn != nil {
				runner.SetTrace(traceFn)
			}
			if reg != nil {
				runner.SetMetricsSink(reg)
			}
			if policy != nil {
				runner.SetPolicy(policy)
			}
			if rec != nil {
				runner.SetObserver(rec)
			}
			s, err := runner.Run(wrap(lid.Handlers(nodes)))
			if err != nil {
				fail("run: %v", err)
			}
			m, err := lid.BuildMatching(nodes)
			if err != nil {
				fail("run: %v", err)
			}
			result, st = m, s
		} else {
			res, err := lid.RunGoroutinesOpts(sys, tbl, lid.GoOptions{
				Timeout: 2 * time.Minute,
				Trace:   traceFn,
				Metrics: reg,
				Policy:  policy,
				Obs:     rec,
			})
			if err != nil {
				fail("run: %v", err)
			}
			result, st = res.Matching, res.Stats
		}
		fmt.Printf("distributed run (goroutines): %v\n", time.Since(start))
		fmt.Printf("  messages: %d total (%d PROP, %d REJ)\n",
			st.TotalSent(), st.SentByKind["PROP"], st.SentByKind["REJ"])
		reportFaults(st)
	case "udp":
		// Real loopback sockets via internal/transport: the same wrapped
		// stack, with every message crossing the kernel as coalesced UDP
		// datagrams instead of simulator deliveries.
		nodes := lid.NewNodes(sys, tbl)
		cluster, err := transport.NewLoopbackCluster(g.NumNodes(), transport.ClusterConfig{})
		if err != nil {
			fail("run: %v", err)
		}
		st, err := cluster.Run(wrap(lid.Handlers(nodes)))
		if err != nil {
			fail("run: %v", err)
		}
		m, err := lid.BuildMatching(nodes)
		if err != nil {
			fail("run: %v", err)
		}
		result = m
		var datagrams, bytesOut int64
		for _, nd := range cluster.Nodes() {
			c := nd.Counters()
			datagrams += c.DatagramsSent
			bytesOut += c.BytesSent
			if reg != nil {
				nd.PublishMetrics(reg)
			}
		}
		fmt.Printf("distributed run (udp loopback cluster): %v\n", time.Since(start))
		fmt.Printf("  messages: %d total (%d PROP, %d REJ)\n",
			st.TotalSent(), st.SentByKind["PROP"], st.SentByKind["REJ"])
		fmt.Printf("  wire: %d frames coalesced into %d datagrams, %d bytes, %d dropped\n",
			st.TotalSent(), datagrams, bytesOut, st.Dropped)
		reportFaults(st)
	case "centralized":
		result = matching.LIC(sys, tbl)
		fmt.Printf("centralized run (LIC scan): %v\n", time.Since(start))
	default:
		fail("unknown runtime %q", runtime_)
	}

	per := result.PerNodeSatisfaction(sys)
	sum := stats.Summarize(per)
	fmt.Printf("\nmatching: %d connections (quota fill %.1f%%), total weight %.4f\n",
		result.Size(), 100*fill(sys, result), result.Weight(sys))
	fmt.Printf("satisfaction: total %.4f, mean %.4f, min %.4f, median %.4f, fairness %.4f\n",
		result.TotalSatisfaction(sys), sum.Mean, sum.Min, sum.Median, stats.JainFairness(per))

	if verbose {
		fmt.Println("\nper-peer connections:")
		for i := 0; i < g.NumNodes(); i++ {
			fmt.Printf("  %4d (b=%d, S=%.3f): %v\n", i, sys.Quota(i), per[i], result.Connections(i))
		}
	}

	if opts.dotPath != "" {
		writeFileWith(opts.dotPath, func(w io.Writer) error {
			return trace.WriteDOT(w, sys, result)
		})
		fmt.Printf("wrote Graphviz overlay to %s\n", opts.dotPath)
	}
	if opts.tracePath != "" {
		if runtime_ == "centralized" {
			fail("-tracelog requires a distributed runtime (event or goroutine)")
		}
		write := collector.WriteLog
		if opts.traceFormat == "ndjson" {
			write = collector.WriteNDJSON
		}
		writeFileWith(opts.tracePath, write)
		fmt.Printf("wrote message trace (%s, %d deliveries) to %s\n",
			opts.traceFormat, collector.Len(), opts.tracePath)
	}
	if opts.spansPath != "" {
		writeFileWith(opts.spansPath, func(w io.Writer) error {
			return rec.WriteFormat(w, opts.spansFormat)
		})
		fmt.Printf("wrote span trace (%s, %d events) to %s\n",
			opts.spansFormat, rec.Len(), opts.spansPath)
	}
	if reg != nil {
		fmt.Println("\nmetrics:")
		if err := reg.Snapshot().WriteFormat(os.Stdout, opts.metricsFormat); err != nil {
			fail("metrics: %v", err)
		}
	}
}

// writeFileWith creates path and streams content through fn.
func writeFileWith(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fail("%v", err)
	}
}

func latency(jitter float64) simnet.LatencyFunc {
	if jitter <= 0 {
		return simnet.UnitLatency
	}
	return simnet.ExponentialLatency(jitter)
}

func fill(s *pref.System, m *matching.Matching) float64 {
	var used, want int
	for i := 0; i < s.Graph().NumNodes(); i++ {
		used += m.DegreeOf(i)
		want += s.Quota(i)
	}
	if want == 0 {
		return 1
	}
	return float64(used) / float64(want)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "overlaysim: "+format+"\n", args...)
	os.Exit(1)
}
