// Command overlaysim runs one overlay-matching simulation end to end
// and prints a human-readable report: the topology, the preference
// metric, whether the preference system is acyclic, the distributed
// run's message/round statistics, and the satisfaction the peers
// achieved (with the Theorem-3 guarantee for reference).
//
// Examples:
//
//	overlaysim -topology gnp -n 200 -p 0.05 -b 3 -metric random
//	overlaysim -topology geometric -n 500 -radius 0.08 -metric distance -runtime goroutine
//	overlaysim -topology ba -n 300 -m 4 -b 2 -metric transactions -jitter 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"overlaymatch/internal/gen"
	"overlaymatch/internal/graph"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/simnet"
	"overlaymatch/internal/stats"
	"overlaymatch/internal/trace"
)

func main() {
	var (
		topology = flag.String("topology", "gnp", "gnp | geometric | ba | ws | ring | grid | complete | tree")
		n        = flag.Int("n", 100, "number of peers")
		p        = flag.Float64("p", 0.05, "edge probability (gnp)")
		radius   = flag.Float64("radius", 0.15, "connection radius (geometric)")
		mAttach  = flag.Int("m", 3, "attachments per node (ba)")
		k        = flag.Int("k", 6, "lattice degree (ws, even)")
		beta     = flag.Float64("beta", 0.2, "rewiring probability (ws)")
		rows     = flag.Int("rows", 10, "rows (grid)")
		quota    = flag.Int("b", 3, "connection quota per peer")
		metric   = flag.String("metric", "random", "random | symmetric | distance | resource | transactions")
		seed     = flag.Uint64("seed", 1, "seed for topology, preferences and latencies")
		runtime_ = flag.String("runtime", "event", "event | goroutine | centralized")
		jitter   = flag.Float64("jitter", 3, "latency jitter scale (event runtime)")
		workload = flag.String("workload", "", "load a frozen workload JSON (see graphgen -format workload) instead of generating")
		dotOut   = flag.String("dot", "", "write the final overlay as Graphviz DOT to this file")
		traceOut = flag.String("tracelog", "", "write the message trace to this file (event or goroutine runtime)")
		traceFmt = flag.String("traceformat", "log", "trace file format: log | ndjson")
		metOut   = flag.Bool("metrics", false, "print the run's metric snapshot after the report")
		metFmt   = flag.String("metrics-format", "text", "metric snapshot format: text | json | prom")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		verbose  = flag.Bool("v", false, "print per-peer connections")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			writeFileWith(*memProf, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			})
		}()
	}

	opts := reportOpts{seed: *seed, runtime: *runtime_, jitter: *jitter,
		verbose: *verbose, dotPath: *dotOut, tracePath: *traceOut, traceFormat: *traceFmt,
		showMetrics: *metOut, metricsFormat: *metFmt}
	switch *traceFmt {
	case "log", "ndjson":
	default:
		fail("unknown -traceformat %q", *traceFmt)
	}
	switch *metFmt {
	case "text", "json", "prom":
	default:
		fail("unknown -metrics-format %q", *metFmt)
	}

	if *workload != "" {
		runWorkloadFile(*workload, opts)
		return
	}

	src := rng.New(*seed)
	var g *graph.Graph
	var coords [][2]float64
	switch *topology {
	case "gnp":
		g = gen.GNP(src.Split(), *n, *p)
	case "geometric":
		g, coords = gen.Geometric(src.Split(), *n, *radius)
	case "ba":
		g = gen.BarabasiAlbert(src.Split(), *n, *mAttach)
	case "ws":
		g = gen.WattsStrogatz(src.Split(), *n, *k, *beta)
	case "ring":
		g = gen.Ring(*n)
	case "grid":
		cols := (*n + *rows - 1) / *rows
		g = gen.Grid(*rows, cols)
	case "complete":
		g = gen.Complete(*n)
	case "tree":
		g = gen.RandomTree(src.Split(), *n)
	default:
		fail("unknown topology %q", *topology)
	}

	var m pref.Metric
	switch *metric {
	case "random":
		m = pref.NewRandomMetric(src.Split())
	case "symmetric":
		m = pref.NewSymmetricRandomMetric(src.Split())
	case "distance":
		if coords == nil {
			coords = make([][2]float64, g.NumNodes())
			for i := range coords {
				coords[i] = [2]float64{src.Float64(), src.Float64()}
			}
		}
		m = pref.DistanceMetric{Coords: coords}
	case "resource":
		capacity := make([]float64, g.NumNodes())
		for i := range capacity {
			capacity[i] = src.Float64()
		}
		m = pref.ResourceMetric{Capacity: capacity}
	case "transactions":
		hist := make([][]float64, g.NumNodes())
		for i := range hist {
			hist[i] = make([]float64, g.NumNodes())
			for _, j := range g.Neighbors(i) {
				hist[i][j] = src.NormFloat64()
			}
		}
		m = pref.TransactionMetric{History: hist}
	default:
		fail("unknown metric %q", *metric)
	}

	sys, err := pref.Build(g, m, pref.UniformQuota(*quota))
	if err != nil {
		fail("building preferences: %v", err)
	}
	fmt.Printf("overlay: %s, n=%d m=%d, avg degree %.2f (min %d, max %d)\n",
		*topology, g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.MinDegree(), g.MaxDegree())
	fmt.Printf("preferences: metric=%s, quota b=%d\n", *metric, *quota)
	runAndReport(sys, opts)
}

// reportOpts carries the run/report configuration.
type reportOpts struct {
	seed          uint64
	runtime       string
	jitter        float64
	verbose       bool
	dotPath       string
	tracePath     string
	traceFormat   string // log | ndjson
	showMetrics   bool
	metricsFormat string // text | json | prom
}

// runWorkloadFile loads a frozen workload and simulates it.
func runWorkloadFile(path string, opts reportOpts) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	sys, err := pref.ReadJSON(f)
	if err != nil {
		fail("%v", err)
	}
	g := sys.Graph()
	fmt.Printf("workload %s: n=%d m=%d, avg degree %.2f\n",
		path, g.NumNodes(), g.NumEdges(), g.AvgDegree())
	runAndReport(sys, opts)
}

// runAndReport executes the selected runtime and prints the report.
func runAndReport(sys *pref.System, opts reportOpts) {
	seed, runtime_, jitter, verbose := opts.seed, opts.runtime, opts.jitter, opts.verbose
	g := sys.Graph()
	tbl := satisfaction.NewTable(sys)
	var collector trace.Collector
	var traceFn func(simnet.TraceEntry)
	if opts.tracePath != "" {
		traceFn = collector.Record
	}
	var reg *metrics.Registry
	if opts.showMetrics {
		reg = metrics.New()
	}
	fmt.Printf("acyclic=%v; guarantee: LID achieves >= %.4f of optimal total satisfaction (Theorem 3)\n\n",
		pref.IsAcyclic(sys), satisfaction.Theorem3Bound(maxInt(sys.MaxQuota(), 1)))

	var result *matching.Matching
	start := time.Now()
	switch runtime_ {
	case "event":
		res, err := lid.RunEvent(sys, tbl, simnet.Options{
			Seed:    seed,
			Latency: latency(jitter),
			Trace:   traceFn,
			Metrics: reg,
		})
		if err != nil {
			fail("run: %v", err)
		}
		result = res.Matching
		fmt.Printf("distributed run (event simulator, jitter %.1f): %v\n", jitter, time.Since(start))
		fmt.Printf("  messages: %d total (%d PROP, %d REJ), %.2f per peer, max %d\n",
			res.Stats.TotalSent(), res.PropMessages, res.RejMessages,
			float64(res.Stats.TotalSent())/float64(g.NumNodes()), res.Stats.MaxSentByNode())
		fmt.Printf("  virtual time to quiescence: %.2f\n", res.Stats.FinalTime)
	case "goroutine":
		res, err := lid.RunGoroutinesOpts(sys, tbl, lid.GoOptions{
			Timeout: 2 * time.Minute,
			Trace:   traceFn,
			Metrics: reg,
		})
		if err != nil {
			fail("run: %v", err)
		}
		result = res.Matching
		fmt.Printf("distributed run (goroutines): %v\n", time.Since(start))
		fmt.Printf("  messages: %d total (%d PROP, %d REJ)\n",
			res.Stats.TotalSent(), res.PropMessages, res.RejMessages)
	case "centralized":
		result = matching.LIC(sys, tbl)
		fmt.Printf("centralized run (LIC scan): %v\n", time.Since(start))
	default:
		fail("unknown runtime %q", runtime_)
	}

	per := result.PerNodeSatisfaction(sys)
	sum := stats.Summarize(per)
	fmt.Printf("\nmatching: %d connections (quota fill %.1f%%), total weight %.4f\n",
		result.Size(), 100*fill(sys, result), result.Weight(sys))
	fmt.Printf("satisfaction: total %.4f, mean %.4f, min %.4f, median %.4f, fairness %.4f\n",
		result.TotalSatisfaction(sys), sum.Mean, sum.Min, sum.Median, stats.JainFairness(per))

	if verbose {
		fmt.Println("\nper-peer connections:")
		for i := 0; i < g.NumNodes(); i++ {
			fmt.Printf("  %4d (b=%d, S=%.3f): %v\n", i, sys.Quota(i), per[i], result.Connections(i))
		}
	}

	if opts.dotPath != "" {
		writeFileWith(opts.dotPath, func(w io.Writer) error {
			return trace.WriteDOT(w, sys, result)
		})
		fmt.Printf("wrote Graphviz overlay to %s\n", opts.dotPath)
	}
	if opts.tracePath != "" {
		if runtime_ == "centralized" {
			fail("-tracelog requires a distributed runtime (event or goroutine)")
		}
		write := collector.WriteLog
		if opts.traceFormat == "ndjson" {
			write = collector.WriteNDJSON
		}
		writeFileWith(opts.tracePath, write)
		fmt.Printf("wrote message trace (%s, %d deliveries) to %s\n",
			opts.traceFormat, collector.Len(), opts.tracePath)
	}
	if reg != nil {
		fmt.Println("\nmetrics:")
		if err := reg.Snapshot().WriteFormat(os.Stdout, opts.metricsFormat); err != nil {
			fail("metrics: %v", err)
		}
	}
}

// writeFileWith creates path and streams content through fn.
func writeFileWith(path string, fn func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		fail("%v", err)
	}
}

func latency(jitter float64) simnet.LatencyFunc {
	if jitter <= 0 {
		return simnet.UnitLatency
	}
	return simnet.ExponentialLatency(jitter)
}

func fill(s *pref.System, m *matching.Matching) float64 {
	var used, want int
	for i := 0; i < s.Graph().NumNodes(); i++ {
		used += m.DegreeOf(i)
		want += s.Quota(i)
	}
	if want == 0 {
		return 1
	}
	return float64(used) / float64(want)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "overlaysim: "+format+"\n", args...)
	os.Exit(1)
}
