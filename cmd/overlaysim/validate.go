package main

import (
	"fmt"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/lid"
)

// cliFlags is the raw cross-checkable flag surface of overlaysim —
// everything whose validity depends on another flag. Keeping the
// checks in one pure function makes the interaction matrix testable:
// the PR 10 audit found -churn silently ignoring -runtime (the engine
// ran regardless, most confusingly under -runtime udp, which opens
// real sockets for a run that never uses them), where every other
// simulator-only hook already errored explicitly.
type cliFlags struct {
	runtime      string
	rto          float64
	adaptiveRTO  bool
	reliable     bool
	hbInterval   float64
	phiThreshold float64
	detector     string
	faults       string
	tracelog     string
	traceSpans   string
	spansFormat  string
	traceFormat  string
	metricsFmt   string
	probeInt     float64
	churn        string
	repairRounds int
	shedDepth    int
	scheduler    string
}

// runConfig is the parsed outcome of validateFlags.
type runConfig struct {
	det   detector.Config
	spec  faults.Spec
	churn dynamic.ChurnSpec
	sched lid.SchedulerSpec
}

// validateFlags parses the structured flags and rejects every
// unsupported flag interaction with an explicit error. The rule for
// simulator-only hooks (-faults, -probe-interval, -trace-spans,
// -tracelog, -churn, -scheduler greedy, -detector, -reliable) is
// uniform: a runtime that cannot honor the hook fails loudly instead
// of silently ignoring it.
func validateFlags(f cliFlags) (runConfig, error) {
	var cfg runConfig

	switch f.runtime {
	case "event", "goroutine", "centralized", "udp":
	default:
		return cfg, fmt.Errorf("unknown runtime %q", f.runtime)
	}
	switch f.spansFormat {
	case "ndjson", "chrome", "tree":
	default:
		return cfg, fmt.Errorf("unknown -trace-spans-format %q", f.spansFormat)
	}
	switch f.traceFormat {
	case "log", "ndjson":
	default:
		return cfg, fmt.Errorf("unknown -traceformat %q", f.traceFormat)
	}
	switch f.metricsFmt {
	case "text", "json", "prom":
	default:
		return cfg, fmt.Errorf("unknown -metrics-format %q", f.metricsFmt)
	}

	if f.rto <= 0 {
		return cfg, fmt.Errorf("-rto must be positive, got %v (the retransmission timer would never fire)", f.rto)
	}
	if f.adaptiveRTO && !f.reliable {
		return cfg, fmt.Errorf("-adaptive-rto tunes the retransmission timer and needs -reliable")
	}
	if f.hbInterval < 0 || f.phiThreshold < 0 {
		return cfg, fmt.Errorf("-hb-interval and -phi-threshold must be positive")
	}
	det, err := detector.Parse(f.detector)
	if err != nil {
		return cfg, err
	}
	if f.hbInterval > 0 || f.phiThreshold > 0 {
		if !det.Enabled() {
			det = detector.Default()
		}
		if f.hbInterval > 0 {
			det.Interval = f.hbInterval
		}
		if f.phiThreshold > 0 {
			det.Phi = f.phiThreshold
		}
		if err := det.Validate(); err != nil {
			return cfg, err
		}
	}
	cfg.det = det

	spec, err := faults.Parse(f.faults)
	if err != nil {
		return cfg, err
	}
	cfg.spec = spec
	if !spec.PreservesDelivery() && !f.reliable {
		return cfg, fmt.Errorf("-faults %q loses messages; bare LID needs -reliable to survive it", f.faults)
	}
	if f.runtime == "centralized" && (!spec.IsZero() || f.reliable || det.Enabled()) {
		return cfg, fmt.Errorf("-faults/-reliable/-detector require a distributed runtime (event or goroutine)")
	}
	// The churn checks come before the udp ones: -churn plus -runtime
	// udp must name the real contradiction (the engine uses no runtime
	// at all), not demand -reliable for a cluster that never starts.
	churnSpec, err := dynamic.ParseChurnSpec(f.churn)
	if err != nil {
		return cfg, err
	}
	cfg.churn = churnSpec
	if f.repairRounds < 0 || f.shedDepth < 0 {
		return cfg, fmt.Errorf("-repair-rounds and -shed-depth must be non-negative")
	}
	if churnSpec.IsZero() && (f.repairRounds > 0 || f.shedDepth > 0) {
		return cfg, fmt.Errorf("-repair-rounds and -shed-depth configure the churn engine; they need -churn")
	}
	if !churnSpec.IsZero() {
		if !spec.IsZero() || f.reliable || det.Enabled() {
			return cfg, fmt.Errorf("-churn runs the incremental repair engine, not the distributed sim; it is incompatible with -faults/-reliable/-detector")
		}
		// The engine replaces the distributed simulation entirely. It
		// used to ignore -runtime — silently on goroutine/centralized,
		// and under udp while still demanding -reliable, which churn
		// rejects. Now any non-default runtime fails explicitly.
		if f.runtime != "event" {
			return cfg, fmt.Errorf("-churn runs the incremental repair engine, not a distributed runtime; drop -runtime %s", f.runtime)
		}
	}

	if f.runtime == "udp" {
		// The loopback cluster is a real lossy wire: the simulator-side
		// conveniences (omniscient tracing, fault policies, probes) have
		// no hook there, and bare LID would wedge on the first lost
		// datagram.
		if !f.reliable {
			return cfg, fmt.Errorf("-runtime udp rides a real datagram socket and needs -reliable")
		}
		if !spec.IsZero() {
			return cfg, fmt.Errorf("-faults injects at the simulator boundary; -runtime udp has no such hook")
		}
		if f.tracelog != "" || f.traceSpans != "" {
			return cfg, fmt.Errorf("-tracelog/-trace-spans need a simulated runtime (event or goroutine)")
		}
	}
	if f.probeInt < 0 {
		return cfg, fmt.Errorf("-probe-interval must be non-negative")
	}
	if f.probeInt > 0 && f.runtime != "event" {
		return cfg, fmt.Errorf("-probe-interval hooks the event run loop and needs -runtime event")
	}
	if f.traceSpans != "" && f.runtime == "centralized" {
		return cfg, fmt.Errorf("-trace-spans requires a distributed runtime (event or goroutine)")
	}

	sched, err := lid.ParseSchedulerSpec(f.scheduler)
	if err != nil {
		return cfg, err
	}
	cfg.sched = sched
	if sched.Greedy() {
		if f.runtime != "event" {
			return cfg, fmt.Errorf("-scheduler %s drives the event runner's admission queue and needs -runtime event", sched)
		}
		if !churnSpec.IsZero() {
			return cfg, fmt.Errorf("-scheduler configures the LID run; it has no effect under -churn")
		}
	}
	return cfg, nil
}
