package main

import (
	"fmt"
	"os"
	"sort"

	"overlaymatch/internal/dynamic"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/stats"
)

// runChurnReport streams a seeded membership feed through the
// churn-survival engine (internal/dynamic) and reports the repair
// epochs it produced: latency, bounded-region size, the certified
// blocking-edge bound, and the weight the configured budget kept
// relative to the live LIC under the inherited weight order.
func runChurnReport(sys *pref.System, opts reportOpts) {
	n := sys.Graph().NumNodes()
	eng, err := dynamic.NewEngine(sys, dynamic.EngineOptions{
		RepairRounds:     opts.repairRounds,
		ShedDepth:        opts.shedDepth,
		Workers:          opts.workers,
		MeasureStability: true,
	})
	if err != nil {
		fail("%v", err)
	}
	records, err := dynamic.RunEngineChurn(eng, opts.churn, opts.seed)
	if err != nil {
		fail("churn run: %v", err)
	}
	o := eng.Overlay()
	if err := o.Validate(); err != nil {
		fail("churn run left an invalid matching: %v", err)
	}

	budget := "full"
	if opts.repairRounds > 0 {
		budget = fmt.Sprintf("k=%d", opts.repairRounds)
	}
	fmt.Printf("churn: %s, budget %s, shed depth %d\n", opts.churn, budget, opts.shedDepth)

	table := stats.NewTable("repair epochs",
		"epoch", "t", "batch", "retries", "rounds", "trunc", "shed", "region",
		"examined", "added", "removed", "latency", "deferred", "blocking")
	var latencies []float64
	var regionSum, maxRegion int
	for _, r := range records {
		latencies = append(latencies, r.Latency())
		regionSum += r.Region
		maxRegion = max(maxRegion, r.Region)
		table.AddRowf(r.Epoch, fmt.Sprintf("%.2f", r.Start), r.Batch, r.Retries, r.Rounds,
			r.Truncated, r.Shed, r.Region, r.Stats.Examined, r.Stats.Added, r.Stats.Removed,
			fmt.Sprintf("%.2f", r.Latency()), r.Deferred, r.Blocking)
	}
	if err := table.WriteText(os.Stdout); err != nil {
		fail("%v", err)
	}
	fmt.Println()

	inherited := o.LiveLICInherited()
	inhWeight := inherited.Weight(o.System())
	weight := o.Matching().Weight(o.System())
	degradation := 1.0
	if inhWeight > 0 {
		degradation = weight / inhWeight
	}
	sort.Float64s(latencies)
	fmt.Printf("epochs %d  retries %d  sheds %d  alive %d/%d\n",
		len(records), eng.TotalRetries(), eng.TotalSheds(), o.NumAlive(), n)
	if len(latencies) > 0 {
		fmt.Printf("repair latency p50 %.2f  p99 %.2f  region mean %.1f max %d\n",
			stats.Percentile(latencies, 0.5), stats.Percentile(latencies, 0.99),
			float64(regionSum)/float64(len(records)), maxRegion)
	}
	fmt.Printf("deferred bound %d  blocking edges %d  weight/inherited-LIC %.4f\n",
		eng.DeferredBound(), o.BlockingEdges(), degradation)
	if healed := eng.Heal(); healed > 0 {
		fmt.Printf("heal: %d extra epochs to quiescence (blocking now %d)\n", healed, o.BlockingEdges())
	}
	if q, err := o.QualityRatio(); err == nil {
		fmt.Printf("quality vs fresh live-LIC (re-ranked): %.4f\n", q)
	}
}
