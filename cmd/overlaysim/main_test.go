package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"overlaymatch/internal/faults"
	"overlaymatch/internal/gen"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/pref"
	"overlaymatch/internal/rng"
)

func testSystem(t *testing.T) *pref.System {
	t.Helper()
	src := rng.New(5)
	g := gen.GNP(src, 12, 0.4)
	s, err := pref.Build(g, pref.NewRandomMetric(src.Split()), pref.UniformQuota(2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLatencyHelper(t *testing.T) {
	if latency(0) == nil || latency(-1) == nil || latency(2) == nil {
		t.Fatal("latency returned nil")
	}
	if got := latency(0)(0, 1, nil); got != 1 {
		t.Fatalf("zero-jitter latency = %v, want unit", got)
	}
}

func TestFillHelper(t *testing.T) {
	s := testSystem(t)
	if f := fill(s, matching.New(s.Graph().NumNodes())); f != 0 {
		t.Fatalf("empty fill = %v", f)
	}
}

func TestMaxInt(t *testing.T) {
	if maxInt(2, 5) != 5 || maxInt(5, 2) != 5 || maxInt(-1, -2) != -1 {
		t.Fatal("maxInt wrong")
	}
}

func TestRunAndReportAllRuntimes(t *testing.T) {
	s := testSystem(t)
	for _, rt := range []string{"event", "goroutine", "centralized"} {
		runAndReport(s, reportOpts{seed: 1, runtime: rt, jitter: 2})
	}
}

func TestRunAndReportArtifacts(t *testing.T) {
	s := testSystem(t)
	dir := t.TempDir()
	dot := filepath.Join(dir, "overlay.dot")
	tl := filepath.Join(dir, "trace.log")
	runAndReport(s, reportOpts{seed: 2, runtime: "event", jitter: 1,
		verbose: true, dotPath: dot, tracePath: tl})
	dotData, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(dotData, []byte("graph overlay {")) {
		t.Fatal("dot output malformed")
	}
	tlData, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tlData, []byte("PROP")) {
		t.Fatal("trace log missing PROP lines")
	}
}

// TestTraceLogOnGoroutineRuntime is the regression test for the old
// hard-fail: -tracelog used to reject -runtime goroutine even though
// the collector is thread-safe.
func TestTraceLogOnGoroutineRuntime(t *testing.T) {
	s := testSystem(t)
	tl := filepath.Join(t.TempDir(), "trace.log")
	runAndReport(s, reportOpts{seed: 4, runtime: "goroutine",
		tracePath: tl, traceFormat: "log"})
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("PROP")) {
		t.Fatal("goroutine trace log missing PROP lines")
	}
}

func TestTraceNDJSONFormat(t *testing.T) {
	s := testSystem(t)
	tl := filepath.Join(t.TempDir(), "trace.ndjson")
	runAndReport(s, reportOpts{seed: 5, runtime: "event", jitter: 1,
		tracePath: tl, traceFormat: "ndjson"})
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(`{"seq":0,`)) {
		t.Fatalf("ndjson trace malformed: %.80s", data)
	}
}

func TestRunAndReportWithMetrics(t *testing.T) {
	s := testSystem(t)
	for _, rt := range []string{"event", "goroutine"} {
		for _, format := range []string{"text", "json", "prom"} {
			runAndReport(s, reportOpts{seed: 6, runtime: rt, jitter: 1,
				showMetrics: true, metricsFormat: format})
		}
	}
}

func TestRunWorkloadFile(t *testing.T) {
	s := testSystem(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "wl.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pref.WriteJSON(f, s); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runWorkloadFile(path, reportOpts{seed: 3, runtime: "centralized"})
}

func TestRunAndReportWithFaults(t *testing.T) {
	s := testSystem(t)
	spec, err := faults.Parse("drop=0.1,dup=0.05,corrupt=0.03,delay=0.1,delayscale=4")
	if err != nil {
		t.Fatal(err)
	}
	for _, rt := range []string{"event", "goroutine"} {
		runAndReport(s, reportOpts{seed: 4, runtime: rt, jitter: 1,
			faults: spec, faultsSeed: 99, reliable: true, rto: 30})
	}
	// Delivery-preserving faults on bare LID, no transport.
	delayOnly, err := faults.Parse("delay=0.3,delayscale=8")
	if err != nil {
		t.Fatal(err)
	}
	runAndReport(s, reportOpts{seed: 4, runtime: "event", jitter: 1,
		faults: delayOnly, faultsSeed: 7})
}

func TestRunReplayFile(t *testing.T) {
	// Freeze a real violation (bare LID under duplication) and drive
	// the -replay path with it.
	w := faults.WorkloadSpec{Topology: "gnp", Metric: "random", N: 24, B: 2, Seed: 9}
	sys, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec := faults.Spec{Dup: 0.3}
	rep := faults.Explore(faults.ExploreOptions{
		Spec: spec, BaseSeed: 1, Count: 60, Workers: 4, MaxViolations: 1,
	}, faults.LIDTrial(sys, faults.TrialOptions{Reliable: false}))
	if len(rep.Violations) == 0 {
		t.Fatal("no violation to freeze")
	}
	v := rep.Violations[0]
	rf := &faults.ReplayFile{
		Version:  faults.ReplayVersion,
		Workload: w,
		Seed:     v.Seed,
		Spec:     spec.String(),
		Err:      v.Err,
		Events:   v.Events,
	}
	path := filepath.Join(t.TempDir(), "violation.replay.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runReplayFile(path) // exits non-zero if the violation fails to reproduce
}
