// Command overlaynode runs ONE overlay node of the LID matching
// protocol on a real UDP socket — the deployable counterpart of
// overlaysim's in-process cluster. Every process is handed the same
// workload seed and rebuilds the full preference system
// deterministically (faults.WorkloadSpec), so no coordinator has to
// distribute preference lists: node i simply runs handler i of exactly
// the stack the simulator certifies, over internal/transport frames.
//
// A three-node cluster on one machine:
//
//	overlaynode -node-id 0 -listen 127.0.0.1:7000 -peers 1=127.0.0.1:7001,2=127.0.0.1:7002 -n 3 &
//	overlaynode -node-id 1 -listen 127.0.0.1:7001 -peers 0=127.0.0.1:7000,2=127.0.0.1:7002 -n 3 &
//	overlaynode -node-id 2 -listen 127.0.0.1:7002 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001 -n 3
//
// Each process prints its locked partner set once the protocol
// quiesces; corresponding lines across processes agree, and agree with
// `overlaysim -runtime event` on the same workload flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"overlaymatch/internal/detector"
	"overlaymatch/internal/faults"
	"overlaymatch/internal/lid"
	"overlaymatch/internal/matching"
	"overlaymatch/internal/metrics"
	"overlaymatch/internal/reliable"
	"overlaymatch/internal/satisfaction"
	"overlaymatch/internal/transport"
)

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "overlaynode: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		listen   = flag.String("listen", "", "UDP listen address, e.g. 127.0.0.1:7000 (required)")
		peersStr = flag.String("peers", "", "comma-separated peer routes id=host:port (required)")
		nodeID   = flag.Int("node-id", -1, "this node's ID in [0,n) (required)")
		n        = flag.Int("n", 0, "overlay size = workload size (required)")
		topology = flag.String("topology", "gnp", "workload topology: gnp | geometric | ba | ring")
		quota    = flag.Int("b", 3, "connection quota per peer")
		metric   = flag.String("metric", "random", "preference metric: random | symmetric | distance")
		seed     = flag.Uint64("seed", 1, "workload seed (identical across the cluster)")
		p        = flag.Float64("p", 0, "edge probability (gnp; 0 = spec default)")
		radius   = flag.Float64("radius", 0, "connection radius (geometric; 0 = spec default)")
		mAttach  = flag.Int("m", 0, "attachments per node (ba; 0 = spec default)")
		rto      = flag.Float64("rto", 30, "retransmission timeout in virtual time units")
		adaptive = flag.Bool("adaptive-rto", false, "RFC-6298 adaptive retransmission timeout")
		detStr   = flag.String("detector", "off", "heartbeat failure detector: off | on | hb=5,phi=8,... (see internal/detector)")
		timeUnit = flag.Duration("time-unit", time.Millisecond, "wall-clock duration of one virtual time unit")
		timeout  = flag.Duration("timeout", 60*time.Second, "give up if the node is not quiescent by then")
		idle     = flag.Duration("idle", 500*time.Millisecond, "silence window that declares the run complete")
		coalesce = flag.Int("coalesce", 0, "frame-byte budget per datagram (0 = default 1200)")
		metOut   = flag.Bool("metrics", false, "print the node's wire metrics after the report")
		verbose  = flag.Bool("v", false, "print the workload and stack configuration")
	)
	flag.Parse()

	peers, err := parsePeers(*peersStr)
	if err != nil {
		fail("%v", err)
	}
	if err := validate(*listen, *nodeID, *n, peers); err != nil {
		fail("%v", err)
	}
	det, err := detector.Parse(*detStr)
	if err != nil {
		fail("%v", err)
	}

	spec := faults.WorkloadSpec{
		Topology: *topology, N: *n, B: *quota, Metric: *metric, Seed: *seed,
		P: *p, Radius: *radius, M: *mAttach,
	}
	sys, err := spec.Build()
	if err != nil {
		fail("%v", err)
	}
	tbl := satisfaction.NewTable(sys)
	g := sys.Graph()
	if *verbose {
		fmt.Printf("workload: %s n=%d b=%d metric=%s seed=%d (%d edges)\n",
			spec.Topology, spec.N, spec.B, spec.Metric, spec.Seed, g.NumEdges())
		fmt.Printf("stack: lid < reliable(rto=%.1f adaptive=%v)", *rto, *adaptive)
		if det.Enabled() {
			fmt.Printf(" < detector(%s)", det)
		}
		fmt.Println()
	}

	// The full handler slice is built (it is cheap — protocol state is
	// lazy) and only handler[node-id] attaches to the socket; the rest
	// exist so the wrap helpers see the same shape the simulator does.
	nodes := lid.NewNodes(sys, tbl)
	handlers := lid.Handlers(nodes)
	// A real datagram socket loses and reorders, so the reliable layer
	// is not optional here the way it is on the simulator.
	eps := reliable.WrapConfig(handlers, reliable.Config{RTO: *rto, Adaptive: *adaptive})
	handlers = reliable.Handlers(eps)
	if det.Enabled() {
		adj := make([][]int, g.NumNodes())
		for i := range adj {
			adj[i] = g.Neighbors(i)
		}
		handlers = detector.Handlers(detector.Wrap(handlers, adj, det))
	}

	nd, err := transport.ListenUDP(transport.UDPConfig{
		NodeID:        *nodeID,
		N:             *n,
		Listen:        *listen,
		Peers:         peers,
		TimeUnit:      *timeUnit,
		CoalesceBytes: *coalesce,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("node %d listening on %s\n", *nodeID, nd.LocalAddr())

	start := time.Now()
	nd.Start(handlers[*nodeID])
	if err := nd.AwaitQuiescence(*timeout, *idle); err != nil {
		nd.Close()
		fail("%v", err)
	}
	nd.Close()

	partners := nodes[*nodeID].Locked()
	sort.Ints(partners)
	local := matching.New(g.NumNodes())
	labels := make([]string, len(partners))
	for i, v := range partners {
		labels[i] = strconv.Itoa(v)
		local.Add(*nodeID, v)
	}
	total := local.PerNodeSatisfaction(sys)[*nodeID]
	fmt.Printf("node %d quiescent after %v: %d/%d connections [%s], satisfaction %.4f\n",
		*nodeID, time.Since(start).Round(time.Millisecond),
		len(partners), *quota, strings.Join(labels, " "), total)
	c := nd.Counters()
	fmt.Printf("  wire: %d frames out / %d in, %d datagrams out / %d in, %d bytes out / %d in, %d dropped\n",
		c.FramesSent, c.FramesDelivered, c.DatagramsSent, c.DatagramsRecv,
		c.BytesSent, c.BytesRecv, c.Dropped)

	if *metOut {
		reg := metrics.New()
		nd.PublishMetrics(reg)
		fmt.Println()
		if err := reg.Snapshot().WriteText(os.Stdout); err != nil {
			fail("metrics: %v", err)
		}
	}
}

// parsePeers parses "1=127.0.0.1:7001,2=127.0.0.1:7002" into a route
// table, rejecting malformed entries and duplicate IDs.
func parsePeers(s string) (map[int]string, error) {
	peers := make(map[int]string)
	if s == "" {
		return peers, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		id, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not id=host:port", entry)
		}
		pid, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("peer entry %q: ID %q is not a number", entry, id)
		}
		if addr == "" {
			return nil, fmt.Errorf("peer entry %q has an empty address", entry)
		}
		if _, dup := peers[pid]; dup {
			return nil, fmt.Errorf("peer ID %d appears twice", pid)
		}
		peers[pid] = addr
	}
	return peers, nil
}

// validate checks the flag combination before any socket is bound.
func validate(listen string, nodeID, n int, peers map[int]string) error {
	if listen == "" {
		return fmt.Errorf("-listen is required")
	}
	if n <= 0 {
		return fmt.Errorf("-n %d must be positive", n)
	}
	if nodeID < 0 || nodeID >= n {
		return fmt.Errorf("-node-id %d outside [0,%d)", nodeID, n)
	}
	for id := range peers {
		if id < 0 || id >= n {
			return fmt.Errorf("peer ID %d outside [0,%d)", id, n)
		}
	}
	for id := 0; id < n; id++ {
		if id == nodeID {
			continue
		}
		if _, ok := peers[id]; !ok {
			return fmt.Errorf("-peers is missing a route for node %d", id)
		}
	}
	return nil
}
