package main

import (
	"strings"
	"testing"
)

func TestParsePeers(t *testing.T) {
	peers, err := parsePeers("1=127.0.0.1:7001, 2=127.0.0.1:7002")
	if err != nil {
		t.Fatalf("parsePeers: %v", err)
	}
	if len(peers) != 2 || peers[1] != "127.0.0.1:7001" || peers[2] != "127.0.0.1:7002" {
		t.Fatalf("parsePeers = %v", peers)
	}
	if peers, err := parsePeers(""); err != nil || len(peers) != 0 {
		t.Fatalf("empty -peers should parse to an empty table, got %v, %v", peers, err)
	}
}

func TestParsePeersRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no equals", "127.0.0.1:7001", "not id=host:port"},
		{"non-numeric id", "x=127.0.0.1:7001", "not a number"},
		{"empty address", "1=", "empty address"},
		{"duplicate id", "1=127.0.0.1:7001,1=127.0.0.1:7002", "appears twice"},
	}
	for _, tc := range cases {
		_, err := parsePeers(tc.in)
		if err == nil {
			t.Errorf("%s: parsePeers(%q) accepted", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidate(t *testing.T) {
	full := map[int]string{1: "127.0.0.1:7001", 2: "127.0.0.1:7002"}
	if err := validate("127.0.0.1:7000", 0, 3, full); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	cases := []struct {
		name   string
		listen string
		nodeID int
		n      int
		peers  map[int]string
		want   string
	}{
		{"empty listen", "", 0, 3, full, "-listen is required"},
		{"zero n", "127.0.0.1:7000", 0, 0, nil, "must be positive"},
		{"negative node id", "127.0.0.1:7000", -1, 3, full, "outside"},
		{"node id beyond n", "127.0.0.1:7000", 3, 3, full, "outside"},
		{"peer id beyond n", "127.0.0.1:7000", 0, 2, map[int]string{1: "a:1", 5: "b:2"}, "outside"},
		{"missing route", "127.0.0.1:7000", 0, 3, map[int]string{1: "a:1"}, "missing a route for node 2"},
	}
	for _, tc := range cases {
		err := validate(tc.listen, tc.nodeID, tc.n, tc.peers)
		if err == nil {
			t.Errorf("%s: validate accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
